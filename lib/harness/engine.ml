(** Domain-parallel experiment engine.

    The paper's evaluation is an embarrassingly parallel grid —
    benchmarks × pipelines × memory latencies × machine widths — and
    every cell is a pure function of the workload source and the
    pipeline configuration.  A {!Session} exploits both facts:

    - {b promise-style memoization}: each cell is computed exactly
      once per session; concurrent requesters block on the promise of
      the domain already computing it;
    - {b a fixed-size domain pool}: [jobs] ways of parallelism
      (including the calling domain, which drains the task queue while
      it waits, so [jobs = 1] degenerates to plain sequential
      evaluation and nested fan-out cannot starve the pool);
    - {b a content-addressed on-disk result cache}: the digest of the
      workload source, the pipeline fingerprint and the machine
      description addresses the resulting cycle count / SpD summary
      under [_spd_cache/], so warm re-runs skip lowering, profiling,
      SpD and scheduling entirely;
    - {b per-stage wall-clock instrumentation}, surfaced through
      {!Session.stats} and rendered by [Report.timings].

    Results are deterministic in [jobs]: cells are pure, so the
    schedule changes only who computes a value, never the value. *)

module W = Spd_workloads

(* Bumped whenever the compiler, scheduler, simulator or the on-disk
   entry format change in a way that affects emitted numbers or decoding;
   invalidates every on-disk entry.  "2": checksummed entry format.
   "3": [Dynamics] entries; SpD applications carry their predicate
   register.  "4": [Decisions] entries; memory arcs carry their
   ambiguity provenance.  "5": [D_verdicts] entries — the
   translation-validation ledger. *)
let cache_version = "5"

(* Engine-level metrics, mirrored alongside the per-session [Stats]
   counters so a metrics snapshot covers multi-session processes too. *)
module M = Spd_telemetry.Metrics
module Log = Spd_telemetry.Log
module Clock = Spd_telemetry.Clock

let m_lowerings = lazy (M.counter "spd.engine.lowerings")
let m_preparations = lazy (M.counter "spd.engine.preparations")
let m_simulations = lazy (M.counter "spd.engine.simulations")
let m_cache_hits = lazy (M.counter "spd.engine.cache.hits")
let m_cache_misses = lazy (M.counter "spd.engine.cache.misses")
let m_cache_evictions = lazy (M.counter "spd.engine.cache.evictions")

(* the short [spd.cache.*] names surfaced by `spd cache stats` and the
   Prometheus exposition, fired alongside the [spd.engine.cache.*]
   counters above *)
let m_cache_hit = lazy (M.counter "spd.cache.hit")
let m_cache_miss = lazy (M.counter "spd.cache.miss")
let m_cache_evict = lazy (M.counter "spd.cache.evict")
let m_cell_retries = lazy (M.counter "spd.engine.cells.retried")
let m_cell_failures = lazy (M.counter "spd.engine.cells.failed")
let m_queries = lazy (M.counter "spd.engine.queries")

let m_stage_seconds =
  lazy
    (List.map
       (fun st ->
         ( st,
           M.histogram ~buckets:M.time_buckets
             ("spd.engine.stage_seconds." ^ Pipeline.stage_name st) ))
       Pipeline.stages)

let mark c = M.incr (Lazy.force c)

(** Force registration of the engine-level counters (including the
    [spd.cache.*] aliases), so a metrics snapshot carries them before
    any cell fires them. *)
let register_metrics () =
  List.iter
    (fun c -> ignore (Lazy.force c))
    [
      m_lowerings; m_preparations; m_simulations; m_cache_hits;
      m_cache_misses; m_cache_evictions; m_cache_hit; m_cache_miss;
      m_cache_evict; m_cell_retries; m_cell_failures; m_queries;
    ];
  ignore (Lazy.force m_stage_seconds)

(* ------------------------------------------------------------------ *)
(* Promise-style memo table, safe for concurrent use from domains.  The
   first requester of a key installs [Pending] and computes outside the
   lock; later requesters wait on the condition until the promise is
   fulfilled (or broken — the exception is replayed, with the original
   backtrace re-attached, to every waiter). *)

module Memo : sig
  type ('k, 'v) t
  val create : int -> ('k, 'v) t
  val get : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
end = struct
  type 'v state =
    | Pending
    | Done of 'v
    | Broken of exn * Printexc.raw_backtrace

  type ('k, 'v) t = {
    mu : Mutex.t;
    fulfilled : Condition.t;
    tbl : ('k, 'v state) Hashtbl.t;
  }

  let create n =
    { mu = Mutex.create (); fulfilled = Condition.create ();
      tbl = Hashtbl.create n }

  let get t k f =
    Mutex.lock t.mu;
    let rec decide () =
      match Hashtbl.find_opt t.tbl k with
      | Some (Done v) -> Mutex.unlock t.mu; v
      | Some (Broken (e, bt)) ->
          Mutex.unlock t.mu;
          Printexc.raise_with_backtrace e bt
      | Some Pending -> Condition.wait t.fulfilled t.mu; decide ()
      | None ->
          Hashtbl.replace t.tbl k Pending;
          Mutex.unlock t.mu;
          let result =
            try Ok (f ())
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          Mutex.lock t.mu;
          Hashtbl.replace t.tbl k
            (match result with
            | Ok v -> Done v
            | Error (e, bt) -> Broken (e, bt));
          Condition.broadcast t.fulfilled;
          Mutex.unlock t.mu;
          (match result with
          | Ok v -> v
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    in
    decide ()
end

(* ------------------------------------------------------------------ *)
(* Fixed-size worker pool.  Domains are spawned lazily on the first
   batch; the caller of [map] participates in draining the queue, so a
   pool of size [n] runs at most [n] tasks concurrently ([n - 1]
   spawned domains plus the caller) and a task that itself fans out
   keeps making progress even when every worker is busy. *)

module Pool : sig
  type t
  val create : size:int -> t
  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  val close : t -> unit
end = struct
  type batch = { mutable remaining : int; mutable failed : exn option }
  type task = { run : unit -> unit; batch : batch }

  type t = {
    mu : Mutex.t;
    work : Condition.t;  (* queue became non-empty, or shutdown *)
    donec : Condition.t;  (* some batch completed *)
    queue : task Queue.t;
    size : int;
    mutable spawned : bool;
    mutable shutdown : bool;
    mutable workers : unit Domain.t list;
  }

  let create ~size =
    { mu = Mutex.create (); work = Condition.create ();
      donec = Condition.create (); queue = Queue.create (); size;
      spawned = false; shutdown = false; workers = [] }

  let run_task t task =
    (try task.run ()
     with e ->
       Mutex.lock t.mu;
       if task.batch.failed = None then task.batch.failed <- Some e;
       Mutex.unlock t.mu);
    Mutex.lock t.mu;
    task.batch.remaining <- task.batch.remaining - 1;
    if task.batch.remaining = 0 then Condition.broadcast t.donec;
    Mutex.unlock t.mu

  let rec worker t =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.shutdown do
      Condition.wait t.work t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* shutdown *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.mu;
      run_task t task;
      worker t
    end

  let ensure_spawned t =
    Mutex.lock t.mu;
    if (not t.spawned) && t.size > 1 then begin
      t.spawned <- true;
      t.workers <-
        List.init (t.size - 1) (fun _ -> Domain.spawn (fun () -> worker t))
    end;
    Mutex.unlock t.mu

  let map t f xs =
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ when t.size <= 1 -> List.map f xs
    | xs ->
        ensure_spawned t;
        let arr = Array.of_list xs in
        let out = Array.make (Array.length arr) None in
        let batch = { remaining = Array.length arr; failed = None } in
        Mutex.lock t.mu;
        Array.iteri
          (fun i x ->
            Queue.push { run = (fun () -> out.(i) <- Some (f x)); batch }
              t.queue)
          arr;
        Condition.broadcast t.work;
        (* the caller is the pool's [size]-th worker until its batch
           completes *)
        let rec drain () =
          if batch.remaining = 0 then Mutex.unlock t.mu
          else if not (Queue.is_empty t.queue) then begin
            let task = Queue.pop t.queue in
            Mutex.unlock t.mu;
            run_task t task;
            Mutex.lock t.mu;
            drain ()
          end
          else begin
            Condition.wait t.donec t.mu;
            drain ()
          end
        in
        drain ();
        (match batch.failed with Some e -> raise e | None -> ());
        Array.to_list (Array.map Option.get out)

  let close t =
    Mutex.lock t.mu;
    t.shutdown <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    List.iter Domain.join t.workers;
    t.workers <- []
end

(* ------------------------------------------------------------------ *)
(* Per-cell outcomes.  A failing grid cell no longer aborts a batch:
   the failure — original exception, backtrace, attempt count, elapsed
   wall clock — is captured, memoized like any other cell value, and
   surfaced to renderers as [Failed]. *)

type failure = {
  key : string;  (** the cell key, [bench/latency/KIND/metric] *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;  (** how many times the cell was attempted *)
  elapsed : float;  (** wall-clock seconds across all attempts *)
}

type 'a outcome = Ok of 'a | Failed of failure

(** Raised by the raising accessors when the underlying cell failed. *)
exception Cell_failed of failure

let pp_failure ppf f =
  Fmt.pf ppf "%s: %s (attempts %d, %.1fs)" f.key (Printexc.to_string f.exn)
    f.attempts f.elapsed

let () =
  Printexc.register_printer (function
    | Cell_failed f -> Some (Fmt.str "Cell_failed: %a" pp_failure f)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Typed queries: the one request shape the engine accepts.  A query
   names an artefact of a (bench, latency) cell plus optional
   per-request budgets.  Budgets only *tighten* the session's own
   budgets, and a budgeted query memoizes under its own cell — a
   quota-starved request can fail without poisoning the unbudgeted
   cell, while N identical budgeted requests still cost one
   computation. *)

let width_tag = function
  | Spd_machine.Descr.Infinite -> "inf"
  | Spd_machine.Descr.Fus n -> "fus" ^ string_of_int n

module Query = struct
  type artefact =
    | Cycles of { kind : Pipeline.kind; width : Spd_machine.Descr.width }
    | Code_size of Pipeline.kind
    | Spd_counts
    | Spd_dynamics
    | Spd_decisions
    | Spd_verdicts
    | Speedup_over_naive of {
        kind : Pipeline.kind;
        width : Spd_machine.Descr.width;
      }
    | Spec_over_static of { width : Spd_machine.Descr.width }
    | Code_growth

  type t = {
    bench : string;
    latency : int;
    artefact : artefact;
    fuel : int option;
    deadline : float option;
  }

  let artefact_name = function
    | Cycles _ -> "cycles"
    | Code_size _ -> "code-size"
    | Spd_counts -> "spd-counts"
    | Spd_dynamics -> "spd-dynamics"
    | Spd_decisions -> "spd-decisions"
    | Spd_verdicts -> "spd-validate"
    | Speedup_over_naive _ -> "speedup-over-naive"
    | Spec_over_static _ -> "spec-over-static"
    | Code_growth -> "code-growth"

  let artefact_names =
    [
      "cycles"; "code-size"; "spd-counts"; "spd-dynamics"; "spd-decisions";
      "spd-validate"; "speedup-over-naive"; "spec-over-static"; "code-growth";
    ]

  let v ?fuel ?deadline ~bench ~latency artefact =
    if latency < 1 then
      invalid_arg
        (Printf.sprintf "Engine.Query.v: latency must be positive, got %d"
           latency);
    (match fuel with
    | Some n when n < 1 ->
        invalid_arg
          (Printf.sprintf "Engine.Query.v: fuel must be positive, got %d" n)
    | _ -> ());
    (match deadline with
    | Some d when d <= 0.0 ->
        invalid_arg
          (Printf.sprintf "Engine.Query.v: deadline must be positive, got %g"
             d)
    | _ -> ());
    { bench; latency; artefact; fuel; deadline }

  let key (q : t) =
    let detail =
      match q.artefact with
      | Cycles { kind; width } ->
          Printf.sprintf "/%s/%s" (Pipeline.name kind) (width_tag width)
      | Code_size kind -> "/" ^ Pipeline.name kind
      | Spd_counts | Spd_dynamics | Spd_decisions | Spd_verdicts
      | Code_growth ->
          ""
      | Speedup_over_naive { kind; width } ->
          Printf.sprintf "/%s/%s" (Pipeline.name kind) (width_tag width)
      | Spec_over_static { width } -> "/" ^ width_tag width
    in
    let budget =
      (match q.fuel with
      | None -> ""
      | Some n -> Printf.sprintf "+fuel=%d" n)
      ^
      match q.deadline with
      | None -> ""
      | Some d -> Printf.sprintf "+deadline=%g" d
    in
    Printf.sprintf "%s/%d/%s%s%s" q.bench q.latency
      (artefact_name q.artefact)
      detail budget
end

type value =
  | Int of int
  | Float of float
  | Counts of int * int * int
  | Dynamics of Pipeline.dynamics
  | Decisions of Spd_core.Heuristic.decision list
  | Verdicts of Spd_validate.Validate.report list

let value_kind = function
  | Int _ -> "Int"
  | Float _ -> "Float"
  | Counts _ -> "Counts"
  | Dynamics _ -> "Dynamics"
  | Decisions _ -> "Decisions"
  | Verdicts _ -> "Verdicts"

let project what f : value outcome -> _ outcome = function
  | Failed fl -> Failed fl
  | Ok v -> (
      match f v with
      | Some x -> Ok x
      | None ->
          invalid_arg
            (Printf.sprintf "Engine.to_%s: value is %s" what (value_kind v)))

let to_int o = project "int" (function Int n -> Some n | _ -> None) o
let to_float o = project "float" (function Float x -> Some x | _ -> None) o
let to_counts o = project "counts" (function Counts (a, b, c) -> Some (a, b, c) | _ -> None) o

let to_dynamics o =
  project "dynamics" (function Dynamics d -> Some d | _ -> None) o

let to_decisions o =
  project "decisions" (function Decisions d -> Some d | _ -> None) o

let to_verdicts o =
  project "verdicts" (function Verdicts v -> Some v | _ -> None) o

(* ------------------------------------------------------------------ *)

module Stats = struct
  type t = {
    jobs : int;  (** pool size of the session *)
    lowerings : int;  (** source programs compiled to IR *)
    preparations : int;  (** pipelines actually run (not cache hits) *)
    simulations : int;  (** schedule+simulate runs actually performed *)
    disk_hits : int;  (** results served from the on-disk cache *)
    disk_misses : int;  (** on-disk lookups that fell through *)
    disk_evictions : int;  (** corrupt on-disk entries evicted and recomputed *)
    cell_retries : int;  (** failed attempts that were retried *)
    cell_failures : int;  (** cells that exhausted their attempts *)
    stage_seconds : (Pipeline.stage * float) list;
        (** cumulative wall clock per pipeline stage, across all domains *)
  }

  (* Sorted [key=value] rendering.  [jobs] is deliberately excluded:
     every other counter is a function of the requested grid alone, so
     the rendered line is bit-identical across job counts (renderers
     that want the pool size print {!t.jobs} themselves). *)
  let to_alist t =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      [
        ("cell_failures", t.cell_failures);
        ("cell_retries", t.cell_retries);
        ("disk_evictions", t.disk_evictions);
        ("disk_hits", t.disk_hits);
        ("disk_misses", t.disk_misses);
        ("lowerings", t.lowerings);
        ("preparations", t.preparations);
        ("simulations", t.simulations);
      ]

  let pp ppf t =
    Fmt.pf ppf "%a"
      Fmt.(list ~sep:(any "; ") (pair ~sep:(any "=") string int))
      (to_alist t)
end

(* ------------------------------------------------------------------ *)

module Session = struct
  (* The internal memo key: cell coordinates plus the per-request
     budget.  Budgeted queries memoize under their own cells; the
     common unbudgeted case is [q_fuel = None; q_deadline = None]. *)
  type key = {
    bench : string;
    latency : int;
    kind : Pipeline.kind;
    q_fuel : int option;
    q_deadline : float option;
  }

  (* every on-disk entry is one of these, Marshal'd; constructor names
     are irrelevant to Marshal (tags are positional) but their order is
     part of the on-disk format *)
  type disk_value =
    | D_cycles of int
    | D_summary of { code_size : int; counts : int * int * int }
    | D_dynamics of Pipeline.dynamics
    | D_decisions of Spd_core.Heuristic.decision list
    | D_verdicts of Spd_validate.Validate.report list

  type t = {
    jobs : int;
    retries : int;  (* attempts per cell before recording a failure *)
    deadline : float option;  (* per-cell wall-clock budget, seconds *)
    faults : Faults.t;
    config : Pipeline.Config.t;  (* user config, timer replaced by ours *)
    cache_dir : string option;  (* None = on-disk cache disabled *)
    pool : Pool.t;
    lowered_memo : (string, Spd_ir.Prog.t) Memo.t;
    prep_memo : (key, Pipeline.prepared) Memo.t;
    cycles_memo : (key * Spd_machine.Descr.width, int outcome) Memo.t;
    summary_memo : (key, (int * (int * int * int)) outcome) Memo.t;
    dynamics_memo : (key, Pipeline.dynamics outcome) Memo.t;
    decisions_memo : (key, Spd_core.Heuristic.decision list outcome) Memo.t;
    verdicts_memo : (key, Spd_validate.Validate.report list outcome) Memo.t;
    stats_mu : Mutex.t;
    mutable lowerings : int;
    mutable preparations : int;
    mutable simulations : int;
    mutable disk_hits : int;
    mutable disk_misses : int;
    mutable disk_evictions : int;
    mutable cell_retries : int;
    mutable cell_failures : int;
    mutable failures : failure list;
    stage_seconds : float array;  (* indexed by Pipeline.stage_index *)
  }

  let try_prepare_dir dir =
    try
      if Sys.file_exists dir then if Sys.is_directory dir then Some dir else None
      else begin Unix.mkdir dir 0o755; Some dir end
    with Unix.Unix_error _ | Sys_error _ -> None

  let create ?jobs ?(disk_cache = false) ?(cache_dir = "_spd_cache")
      ?(retries = 1) ?deadline ?fuel ?(faults = Faults.none)
      ?(config = Pipeline.Config.default) () =
    let jobs =
      match jobs with
      | Some j -> max 1 j
      | None -> Domain.recommended_domain_count ()
    in
    let stats_mu = Mutex.create () in
    let stage_seconds = Array.make (List.length Pipeline.stages) 0.0 in
    let user_timer = config.Pipeline.Config.timer in
    let timer stage dt =
      Mutex.lock stats_mu;
      let i = Pipeline.stage_index stage in
      stage_seconds.(i) <- stage_seconds.(i) +. dt;
      Mutex.unlock stats_mu;
      M.observe (List.assoc stage (Lazy.force m_stage_seconds)) dt;
      match user_timer with Some f -> f stage dt | None -> ()
    in
    (* the session's checker-raise fault fires ahead of any user hook *)
    let user_checker_fault = config.Pipeline.Config.checker_fault in
    let checker_fault () =
      Faults.checker_raise faults;
      match user_checker_fault with Some f -> f () | None -> ()
    in
    (* an armed fuel fault is the tightest budget; otherwise the session
       budget; otherwise whatever the user config says *)
    let fuel =
      match Faults.fuel faults with
      | Some _ as f -> f
      | None -> (
          match fuel with
          | Some _ -> fuel
          | None -> config.Pipeline.Config.fuel)
    in
    let deadline =
      match deadline with
      | Some _ -> deadline
      | None -> config.Pipeline.Config.deadline
    in
    {
      jobs;
      retries = max 1 retries;
      deadline;
      faults;
      config =
        { config with timer = Some timer; fuel; deadline;
          checker_fault = Some checker_fault };
      cache_dir = (if disk_cache then try_prepare_dir cache_dir else None);
      pool = Pool.create ~size:jobs;
      lowered_memo = Memo.create 16;
      prep_memo = Memo.create 64;
      cycles_memo = Memo.create 256;
      summary_memo = Memo.create 64;
      dynamics_memo = Memo.create 64;
      decisions_memo = Memo.create 64;
      verdicts_memo = Memo.create 64;
      stats_mu;
      lowerings = 0;
      preparations = 0;
      simulations = 0;
      disk_hits = 0;
      disk_misses = 0;
      disk_evictions = 0;
      cell_retries = 0;
      cell_failures = 0;
      failures = [];
      stage_seconds;
    }

  let close t = Pool.close t.pool
  let jobs t = t.jobs

  let bump t f =
    Mutex.lock t.stats_mu;
    f t;
    Mutex.unlock t.stats_mu

  let stats t : Stats.t =
    Mutex.lock t.stats_mu;
    let s =
      {
        Stats.jobs = t.jobs;
        lowerings = t.lowerings;
        preparations = t.preparations;
        simulations = t.simulations;
        disk_hits = t.disk_hits;
        disk_misses = t.disk_misses;
        disk_evictions = t.disk_evictions;
        cell_retries = t.cell_retries;
        cell_failures = t.cell_failures;
        stage_seconds =
          List.map
            (fun st -> (st, t.stage_seconds.(Pipeline.stage_index st)))
            Pipeline.stages;
      }
    in
    Mutex.unlock t.stats_mu;
    s

  let failures t =
    Mutex.lock t.stats_mu;
    let fs = t.failures in
    Mutex.unlock t.stats_mu;
    List.sort (fun a b -> compare a.key b.key) fs

  (* ---------------------------------------------------------------- *)
  (* The contained-failure cell runner: every grid-cell computation goes
     through [protected], which consults the armed faults, retries up to
     [t.retries] attempts (stopping early once the per-cell wall-clock
     deadline has passed), and converts the final exception into a
     recorded [Failed] outcome instead of letting it tear down the
     batch.  [Sys.Break] (user interrupt) is never contained. *)

  let protected t ~deadline ~key (f : unit -> 'a) : 'a outcome =
    let t0 = Clock.now () in
    Log.debug "engine.cell.start" [ ("key", Spd_telemetry.Json.String key) ];
    (* one trace span per attempt, so retries show up individually *)
    let f () = Spd_telemetry.Trace.with_span ~name:("cell:" ^ key) f in
    let rec attempt n =
      match
        Faults.cell_raise t.faults ~key;
        f ()
      with
      | v ->
          Log.debug "engine.cell.finish"
            [
              ("key", Spd_telemetry.Json.String key);
              ("attempts", Spd_telemetry.Json.Int n);
              ("seconds", Spd_telemetry.Json.Float (Clock.now () -. t0));
            ];
          Ok v
      | exception Sys.Break -> raise Sys.Break
      | exception e ->
          let backtrace = Printexc.get_raw_backtrace () in
          let elapsed = Clock.now () -. t0 in
          let out_of_time =
            match deadline with Some d -> elapsed >= d | None -> false
          in
          if n < t.retries && not out_of_time then begin
            bump t (fun t -> t.cell_retries <- t.cell_retries + 1);
            mark m_cell_retries;
            Log.info "engine.cell.retry"
              [
                ("key", Spd_telemetry.Json.String key);
                ("attempt", Spd_telemetry.Json.Int n);
                ("error", Spd_telemetry.Json.String (Printexc.to_string e));
              ];
            attempt (n + 1)
          end
          else begin
            let f = { key; exn = e; backtrace; attempts = n; elapsed } in
            bump t (fun t ->
                t.cell_failures <- t.cell_failures + 1;
                t.failures <- f :: t.failures);
            mark m_cell_failures;
            Log.warn "engine.cell.fail"
              [
                ("key", Spd_telemetry.Json.String key);
                ("attempts", Spd_telemetry.Json.Int n);
                ("seconds", Spd_telemetry.Json.Float elapsed);
                ("error", Spd_telemetry.Json.String (Printexc.to_string e));
              ];
            Failed f
          end
    in
    attempt 1

  let get = function Ok v -> v | Failed f -> raise (Cell_failed f)

  (* ---------------------------------------------------------------- *)
  (* On-disk cache.  Keys are the MD5 of a canonical payload string;
     writes go through a unique temporary file and an atomic rename, so
     concurrent domains (or processes) never observe torn entries.

     The atomic rename cannot protect an entry *after* it landed —
     truncation, bit rot, a format change.  Every entry therefore
     carries a one-line header [spd-cache <version> <md5-of-body>
     <body-length>] ahead of the Marshal'd body; a reader that finds a
     version mismatch, a short body, a checksum mismatch or an
     undecodable payload logs the reason, evicts the entry and lets the
     caller recompute — the cache heals itself instead of crashing. *)

  let write_seq = Atomic.make 0

  let disk_path dir payload =
    Filename.concat dir (Digest.to_hex (Digest.string payload) ^ ".cache")

  let encode_entry (v : disk_value) =
    let body = Marshal.to_string v [] in
    Printf.sprintf "spd-cache %s %s %d\n%s" cache_version
      (Digest.to_hex (Digest.string body))
      (String.length body) body

  let decode_entry s : (disk_value, string) result =
    match String.index_opt s '\n' with
    | None -> Error "truncated header"
    | Some i -> (
        let header = String.sub s 0 i in
        let body = String.sub s (i + 1) (String.length s - i - 1) in
        match String.split_on_char ' ' header with
        | [ "spd-cache"; version; digest; length ] ->
            if version <> cache_version then
              Error (Printf.sprintf "version %s, want %s" version cache_version)
            else if int_of_string_opt length <> Some (String.length body)
            then Error "body length mismatch (truncated entry)"
            else if Digest.to_hex (Digest.string body) <> digest then
              Error "checksum mismatch (corrupt entry)"
            else (
              match (Marshal.from_string body 0 : disk_value) with
              | v -> Ok v
              | exception _ -> Error "undecodable payload")
        | _ -> Error "malformed header")

  (* deterministic corruption for the [cache-corrupt] fault: flip a bit
     in the middle of the entry so the checksum (or header) breaks *)
  let corrupt_bytes s =
    if String.length s = 0 then s
    else begin
      let b = Bytes.of_string s in
      let i = Bytes.length b / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      Bytes.to_string b
    end

  let evict t path reason =
    Log.warn "engine.cache.evict"
      [
        ("entry", Spd_telemetry.Json.String (Filename.basename path));
        ("reason", Spd_telemetry.Json.String reason);
      ];
    (try Sys.remove path with Sys_error _ -> ());
    bump t (fun t ->
        t.disk_evictions <- t.disk_evictions + 1;
        t.disk_misses <- t.disk_misses + 1);
    mark m_cache_evictions;
    mark m_cache_misses;
    mark m_cache_evict;
    mark m_cache_miss

  let disk_read t payload : disk_value option =
    match t.cache_dir with
    | None -> None
    | Some dir -> (
        let path = disk_path dir payload in
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error _ ->
            bump t (fun t -> t.disk_misses <- t.disk_misses + 1);
            mark m_cache_misses;
            mark m_cache_miss;
            None
        | s -> (
            let s =
              if Faults.corrupt_cache_read t.faults then corrupt_bytes s
              else s
            in
            match decode_entry s with
            | Ok v ->
                bump t (fun t -> t.disk_hits <- t.disk_hits + 1);
                mark m_cache_hits;
                mark m_cache_hit;
                Some v
            | Error reason -> evict t path reason; None))

  let disk_write t payload (v : disk_value) =
    match t.cache_dir with
    | None -> ()
    | Some dir -> (
        let path = disk_path dir payload in
        let tmp =
          Printf.sprintf "%s.%d.%d.%d.tmp" path (Unix.getpid ())
            (Domain.self () :> int)
            (Atomic.fetch_and_add write_seq 1)
        in
        try
          Out_channel.with_open_bin tmp (fun oc ->
              Out_channel.output_string oc (encode_entry v));
          Sys.rename tmp path
        with Sys_error _ | Unix.Unix_error _ -> (
          try Sys.remove tmp with Sys_error _ -> ()))

  (* The full content address of a grid cell: cache format version,
     digest of the workload source, pipeline kind and configuration
     fingerprint (which includes the memory latency).  Budgets are
     deliberately excluded, like they are from the fingerprint: a
     budget can only turn a result into a failure, never change a
     successfully computed value, so budgeted successes share their
     disk entry with the unbudgeted cell. *)
  let cell_payload t (k : key) =
    let w = W.Registry.by_name k.bench in
    String.concat "|"
      [
        "spd"; cache_version;
        Digest.to_hex (Digest.string w.source);
        Pipeline.name k.kind;
        Pipeline.Config.fingerprint
          { t.config with mem_latency = k.latency };
      ]

  (* The human-readable cell key: what [cell-raise] faults match against
     and what the failure appendix prints. *)
  let cell_key (k : key) =
    Printf.sprintf "%s/%d/%s" k.bench k.latency (Pipeline.name k.kind)

  (* appended at the END of the full metric key, so [cell-raise]
     prefixes over unbudgeted keys keep matching exactly as before *)
  let budget_tag (k : key) =
    (match k.q_fuel with
    | None -> ""
    | Some n -> Printf.sprintf "+fuel=%d" n)
    ^
    match k.q_deadline with
    | None -> ""
    | Some d -> Printf.sprintf "+deadline=%g" d

  let opt_min_int a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)

  let opt_min_float a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (Float.min a b)

  (* the pipeline configuration of one cell: per-cell memory latency,
     session budgets tightened by the request's quotas *)
  let config_for t (k : key) =
    {
      t.config with
      Pipeline.Config.mem_latency = k.latency;
      fuel = opt_min_int t.config.Pipeline.Config.fuel k.q_fuel;
      deadline =
        opt_min_float t.config.Pipeline.Config.deadline k.q_deadline;
    }

  let eff_deadline t (k : key) = opt_min_float t.deadline k.q_deadline

  (* ---------------------------------------------------------------- *)

  let lowered t bench =
    Memo.get t.lowered_memo bench (fun () ->
        bump t (fun t -> t.lowerings <- t.lowerings + 1);
        mark m_lowerings;
        let t0 = Clock.now () in
        let prog =
          Spd_lang.Lower.compile (W.Registry.by_name bench).source
        in
        (match t.config.timer with
        | Some cb -> cb Pipeline.Lower (Clock.now () -. t0)
        | None -> ());
        prog)

  let prepared_cell t (k : key) =
    Memo.get t.prep_memo k (fun () ->
        let lowered = lowered t k.bench in
        bump t (fun t -> t.preparations <- t.preparations + 1);
        mark m_preparations;
        Pipeline.prepare ~config:(config_for t k) k.kind lowered)

  let prepared t ~bench ~latency kind =
    prepared_cell t { bench; latency; kind; q_fuel = None; q_deadline = None }

  let cycles_cell t (k : key) ~width =
    Memo.get t.cycles_memo (k, width) (fun () ->
        protected t ~deadline:(eff_deadline t k)
          ~key:(cell_key k ^ "/cycles/" ^ width_tag width ^ budget_tag k)
          (fun () ->
            (* an armed cycles-inflate fault perturbs what we report but
               never what we persist, so the cache stays truthful and
               the slowdown applies to cache hits too *)
            let inflate = Faults.inflate_cycles t.faults in
            let payload =
              cell_payload t k ^ "|cycles:" ^ width_tag width
            in
            match disk_read t payload with
            | Some (D_cycles n) -> inflate n
            | _ ->
                bump t (fun t -> t.simulations <- t.simulations + 1);
                mark m_simulations;
                let n = Pipeline.cycles (prepared_cell t k) ~width in
                disk_write t payload (D_cycles n);
                inflate n))

  (* code size and Table 6-3 counts of a cell, from one preparation *)
  let summary_cell t (k : key) =
    Memo.get t.summary_memo k (fun () ->
        protected t ~deadline:(eff_deadline t k)
          ~key:(cell_key k ^ "/summary" ^ budget_tag k)
          (fun () ->
            let payload = cell_payload t k ^ "|summary" in
            match disk_read t payload with
            | Some (D_summary s) -> (s.code_size, s.counts)
            | _ ->
                let p = prepared_cell t k in
                let code_size = Pipeline.code_size p in
                let counts =
                  Spd_core.Heuristic.count_by_kind p.applications
                in
                disk_write t payload (D_summary { code_size; counts });
                (code_size, counts)))

  (* run-time dynamics of the SPEC pipeline's SpD applications *)
  let dynamics_cell t (k : key) =
    Memo.get t.dynamics_memo k (fun () ->
        protected t ~deadline:(eff_deadline t k)
          ~key:(cell_key k ^ "/dynamics" ^ budget_tag k)
          (fun () ->
            let payload = cell_payload t k ^ "|dynamics" in
            match disk_read t payload with
            | Some (D_dynamics d) -> d
            | _ ->
                bump t (fun t -> t.simulations <- t.simulations + 1);
                mark m_simulations;
                let d = Pipeline.dynamics (prepared_cell t k) in
                disk_write t payload (D_dynamics d);
                d))

  (* the heuristic's decision ledger of a cell; a pure function of the
     preparation, so no simulation is charged *)
  let decisions_cell t (k : key) =
    Memo.get t.decisions_memo k (fun () ->
        protected t ~deadline:(eff_deadline t k)
          ~key:(cell_key k ^ "/decisions" ^ budget_tag k)
          (fun () ->
            let payload = cell_payload t k ^ "|decisions" in
            match disk_read t payload with
            | Some (D_decisions ds) -> ds
            | _ ->
                let p = prepared_cell t k in
                disk_write t payload (D_decisions p.Pipeline.decisions);
                p.Pipeline.decisions))

  (* the translation-validation ledger of a cell's SPEC applications;
     prepared under its own [validate = true] configuration.  Validation
     is excluded from the config fingerprint (it never changes the
     prepared program), so the ledger is addressed by the shared cell
     payload plus its own suffix; the preparation itself is charged
     separately from [prepared_cell]'s, because a raising verdict must
     fail only this cell. *)
  let verdicts_cell t (k : key) =
    Memo.get t.verdicts_memo k (fun () ->
        protected t ~deadline:(eff_deadline t k)
          ~key:(cell_key k ^ "/verdicts" ^ budget_tag k)
          (fun () ->
            let payload = cell_payload t k ^ "|verdicts" in
            match disk_read t payload with
            | Some (D_verdicts vs) -> vs
            | _ ->
                let lowered = lowered t k.bench in
                bump t (fun t -> t.preparations <- t.preparations + 1);
                mark m_preparations;
                let config =
                  { (config_for t k) with Pipeline.Config.validate = true }
                in
                let p = Pipeline.prepare ~config k.kind lowered in
                disk_write t payload (D_verdicts p.Pipeline.verdicts);
                p.Pipeline.verdicts))

  let map_outcome f = function Ok v -> Ok (f v) | Failed f -> Failed f

  let pair_outcome a b =
    match (a, b) with
    | Ok a, Ok b -> Ok (a, b)
    | Failed f, _ | _, Failed f -> Failed f

  (* ---------------------------------------------------------------- *)
  (* The one request path.  Everything above is addressed by [Query.t]:
     derived artefacts (speedups, code growth) fan out to their operand
     cells under the same budget, and all sharing — concurrent
     deduplication included — falls out of the per-cell promises. *)

  let submit t (q : Query.t) : value outcome =
    mark m_queries;
    let k kind =
      {
        bench = q.Query.bench;
        latency = q.Query.latency;
        kind;
        q_fuel = q.Query.fuel;
        q_deadline = q.Query.deadline;
      }
    in
    match q.Query.artefact with
    | Query.Cycles { kind; width } ->
        map_outcome (fun n -> Int n) (cycles_cell t (k kind) ~width)
    | Query.Code_size kind ->
        map_outcome (fun (code_size, _) -> Int code_size)
          (summary_cell t (k kind))
    | Query.Spd_counts ->
        map_outcome
          (fun (_, (raw, war, waw)) -> Counts (raw, war, waw))
          (summary_cell t (k Pipeline.Spec))
    | Query.Spd_dynamics ->
        map_outcome (fun d -> Dynamics d) (dynamics_cell t (k Pipeline.Spec))
    | Query.Spd_decisions ->
        map_outcome
          (fun ds -> Decisions ds)
          (decisions_cell t (k Pipeline.Spec))
    | Query.Spd_verdicts ->
        map_outcome
          (fun vs -> Verdicts vs)
          (verdicts_cell t (k Pipeline.Spec))
    | Query.Speedup_over_naive { kind; width } ->
        map_outcome
          (fun (base, this) -> Float (Pipeline.speedup ~base ~this))
          (pair_outcome
             (cycles_cell t (k Pipeline.Naive) ~width)
             (cycles_cell t (k kind) ~width))
    | Query.Spec_over_static { width } ->
        map_outcome
          (fun (base, this) -> Float (Pipeline.speedup ~base ~this))
          (pair_outcome
             (cycles_cell t (k Pipeline.Static) ~width)
             (cycles_cell t (k Pipeline.Spec) ~width))
    | Query.Code_growth ->
        map_outcome
          (fun ((base, _), (spec, _)) ->
            Float ((float_of_int spec /. float_of_int base) -. 1.0))
          (pair_outcome
             (summary_cell t (k Pipeline.Static))
             (summary_cell t (k Pipeline.Spec)))

  (* deprecated raising shims: the historical per-artefact accessors,
     each one [submit] plus a projection *)

  let shim t ~bench ~latency artefact =
    submit t (Query.v ~bench ~latency artefact)

  let cycles t ~bench ~latency kind ~width =
    get (to_int (shim t ~bench ~latency (Query.Cycles { kind; width })))

  let code_size t ~bench ~latency kind =
    get (to_int (shim t ~bench ~latency (Query.Code_size kind)))

  let spd_counts t ~bench ~latency =
    get (to_counts (shim t ~bench ~latency Query.Spd_counts))

  let spd_dynamics t ~bench ~latency =
    get (to_dynamics (shim t ~bench ~latency Query.Spd_dynamics))

  let spd_decisions t ~bench ~latency =
    get (to_decisions (shim t ~bench ~latency Query.Spd_decisions))

  let spd_verdicts t ~bench ~latency =
    get (to_verdicts (shim t ~bench ~latency Query.Spd_verdicts))

  let speedup_over_naive t ~bench ~latency kind ~width =
    get
      (to_float
         (shim t ~bench ~latency (Query.Speedup_over_naive { kind; width })))

  let spec_over_static t ~bench ~latency ~width =
    get (to_float (shim t ~bench ~latency (Query.Spec_over_static { width })))

  let code_growth t ~bench ~latency =
    get (to_float (shim t ~bench ~latency Query.Code_growth))

  (* ---------------------------------------------------------------- *)

  let parallel_map t f xs =
    if t.jobs <= 1 then List.map f xs else Pool.map t.pool f xs

  let parallel_iter t f xs = ignore (parallel_map t (fun x -> f x; ()) xs)
end
