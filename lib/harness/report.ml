(** The paper's tables and figures, built as data.

    Each artefact is computed into {!Table.t} values first (see
    [*_tables]) and only then rendered; the pretty printers below and
    the machine-readable emitters in {!Artefact} therefore read the
    exact same values.  Every builder takes its {!Engine.Session.t}
    explicitly and reads cells through {!Engine.Session.submit}, the
    same path the CLIs and the [spd serve] daemon use.  Absolute
    numbers differ from the paper's proprietary LIFE testbed;
    EXPERIMENTS.md records the shape comparison. *)

module W = Spd_workloads
module Query = Engine.Query

let latencies = [ 2; 6 ]

(* Figure 6-3's machine widths; settable from the CLI (--widths).  This
   is the one process-wide rendering knob left: the CLIs set it once at
   startup, before any session work, and the daemon never touches it. *)
let default_widths = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let current_widths = ref default_widths

let set_widths = function
  | [] -> invalid_arg "Report.set_widths: empty width list"
  | ws ->
      List.iter
        (fun w ->
          if w < 1 then
            invalid_arg (Printf.sprintf "Report.set_widths: width %d < 1" w))
        ws;
      current_widths := ws

let widths () = !current_widths

let benches () = List.map (fun (w : W.Workload.t) -> w.name) W.Registry.all

let nrc_benches () =
  List.map (fun (w : W.Workload.t) -> w.name) W.Registry.nrc

(* one grid cell through the engine's single request path *)
let submit s ~bench ~latency artefact =
  Engine.Session.submit s (Query.v ~bench ~latency artefact)

(* Fan the given grid cells out over the session's domain pool before
   rendering; the table builders below then only read memoized results,
   so their values are independent of the number of jobs. *)
let warm s (f : 'a -> unit) (cells : 'a list) =
  Engine.Session.parallel_iter s f cells

let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* n/a-aware percentage cell: a failed grid cell renders as [Na] instead
   of aborting the artefact; the details land in [failure_appendix]. *)
let pct_cell = function
  | Engine.Ok v -> Table.Pct v
  | Engine.Failed _ -> Table.Na

(* ------------------------------------------------------------------ *)
(* Paper artefacts, as data *)

(** Table 6-1: operation latencies (the machine configuration). *)
let table6_1_tables (_ : Engine.Session.t) =
  [
    Table.v ~id:"table6_1" ~title:"Table 6-1: Operation latencies"
      ~label_header:"Operation" ~columns:[ "Latency (cyc)" ]
      (List.map
         (fun (name, lat) -> Table.row name [ Table.Int lat ])
         (Spd_machine.Descr.table_6_1 ~mem_latency:2)
      @ [
          Table.row "Memory loads and stores (swept)" [ Table.Text "2 or 6" ];
        ]);
  ]

(** Table 6-2: benchmark descriptions. *)
let table6_2_tables (_ : Engine.Session.t) =
  [
    Table.v ~id:"table6_2" ~title:"Table 6-2: Benchmark descriptions"
      ~label_header:"Benchmark" ~columns:[ "Suite"; "Lines"; "Description" ]
      (List.map
         (fun (w : W.Workload.t) ->
           Table.row w.name
             [
               Table.Text (W.Workload.suite_name w.suite);
               Table.Int (W.Registry.lines w);
               Table.Text w.description;
             ])
         W.Registry.all);
  ]

(** Table 6-3: frequency of SpD application by dependence type. *)
let table6_3_tables s =
  warm s
    (fun (bench, latency) ->
      ignore (submit s ~bench ~latency Query.Spd_counts))
    (product (benches ()) latencies);
  let totals = Array.make 6 0 in
  (* a failed cell renders its three columns as n/a and is excluded
     from the TOTAL row *)
  let triple off = function
    | Engine.Ok (r, w, o) ->
        List.iteri
          (fun i v -> totals.(off + i) <- totals.(off + i) + v)
          [ r; w; o ];
        [ Table.Int r; Table.Int w; Table.Int o ]
    | Engine.Failed _ -> [ Table.Na; Table.Na; Table.Na ]
  in
  let rows =
    List.map
      (fun bench ->
        let counts latency =
          Engine.to_counts (submit s ~bench ~latency Query.Spd_counts)
        in
        Table.row bench (triple 0 (counts 2) @ triple 3 (counts 6)))
      (benches ())
  in
  [
    Table.v ~id:"table6_3"
      ~title:"Table 6-3: Frequency of SpD application by dependence type"
      ~label_header:"Program"
      ~groups:
        [ ("2 Cycle Memory Latency", 3); ("6 Cycle Memory Latency", 3) ]
      ~columns:[ "RAW"; "WAR"; "WAW"; "RAW"; "WAR"; "WAW" ]
      ~footers:
        [
          Table.row "TOTAL"
            (List.map (fun v -> Table.Int v) (Array.to_list totals));
        ]
      rows;
  ]

(** Table 6-4: the four disambiguators. *)
let table6_4_tables (_ : Engine.Session.t) =
  [
    Table.v ~id:"table6_4" ~title:"Table 6-4: Disambiguators used in experiments"
      ~label_header:"Disambiguator" ~columns:[ "Description" ]
      (List.map
         (fun (k, d) -> Table.row k [ Table.Text d ])
         [
           ("NAIVE", "None");
           ("STATIC", "Static (GCD/Banerjee over affine forms)");
           ("SPEC", "Static followed by SpD");
           ("PERFECT", "Perfect static (profiled superfluous-arc removal)");
         ]);
  ]

(* the SPEC column's value, for the figures' ASCII bars *)
let spec_bar col (r : Table.row) =
  match List.nth_opt r.cells col with
  | Some (Table.Pct v) -> Some v
  | _ -> None

(** Figure 6-2: speedup over NAIVE on a 5-FU machine. *)
let fig6_2_tables s =
  warm s
    (fun ((bench, latency), kind) ->
      ignore
        (submit s ~bench ~latency
           (Query.Cycles { kind; width = Spd_machine.Descr.Fus 5 })))
    (product (product (benches ()) latencies) Pipeline.all);
  List.map
    (fun latency ->
      Table.v
        ~id:(Printf.sprintf "fig6_2.lat%d" latency)
        ~title:
          (Printf.sprintf
             "Figure 6-2: Speedup over the NAIVE disambiguator (5 FU \
              machine, %d cycle memory latency)"
             latency)
        ~label_header:"Program"
        ~columns:[ "STATIC"; "SPEC"; "PERFECT" ]
        ~bar_of:(spec_bar 1)
        (List.map
           (fun bench ->
             let sp kind =
               Engine.to_float
                 (submit s ~bench ~latency
                    (Query.Speedup_over_naive
                       { kind; width = Spd_machine.Descr.Fus 5 }))
             in
             Table.row bench
               [
                 pct_cell (sp Pipeline.Static);
                 pct_cell (sp Pipeline.Spec);
                 pct_cell (sp Pipeline.Perfect);
               ])
           (benches ())))
    latencies

(** Raw cycle counts on the 5-FU machine — the regression tracker's
    primary input ([spd bench diff]); not part of the paper set. *)
let cycles_tables s =
  let int_cell = function
    | Engine.Ok v -> Table.Int v
    | Engine.Failed _ -> Table.Na
  in
  warm s
    (fun ((bench, latency), kind) ->
      ignore
        (submit s ~bench ~latency
           (Query.Cycles { kind; width = Spd_machine.Descr.Fus 5 })))
    (product (product (benches ()) latencies) Pipeline.all);
  List.map
    (fun latency ->
      Table.v
        ~id:(Printf.sprintf "cycles.lat%d" latency)
        ~title:
          (Printf.sprintf
             "Simulated cycles (5 FU machine, %d cycle memory latency)"
             latency)
        ~label_header:"Program"
        ~columns:(List.map Pipeline.name Pipeline.all)
        (List.map
           (fun bench ->
             Table.row bench
               (List.map
                  (fun kind ->
                    int_cell
                      (Engine.to_int
                         (submit s ~bench ~latency
                            (Query.Cycles
                               { kind; width = Spd_machine.Descr.Fus 5 }))))
                  Pipeline.all))
           (benches ())))
    latencies

(** Figure 6-3: speedup of SPEC over STATIC vs machine width (NRC). *)
let fig6_3_tables s =
  let widths = widths () in
  warm s
    (fun (((bench, latency), width), kind) ->
      ignore
        (submit s ~bench ~latency
           (Query.Cycles { kind; width = Spd_machine.Descr.Fus width })))
    (product
       (product (product (nrc_benches ()) latencies) widths)
       [ Pipeline.Static; Pipeline.Spec ]);
  List.map
    (fun latency ->
      Table.v
        ~id:(Printf.sprintf "fig6_3.lat%d" latency)
        ~title:
          (Printf.sprintf
             "Figure 6-3: Speedup of SPEC over STATIC (NRC benchmarks, %d \
              cycle memory latency)"
             latency)
        ~label_header:"Program"
        ~columns:(List.map (fun w -> Printf.sprintf "%d FU" w) widths)
        (List.map
           (fun bench ->
             Table.row bench
               (List.map
                  (fun w ->
                    pct_cell
                      (Engine.to_float
                         (submit s ~bench ~latency
                            (Query.Spec_over_static
                               { width = Spd_machine.Descr.Fus w }))))
                  widths))
           (nrc_benches ())))
    latencies

(** Figure 6-4: code size increase due to SpD (2-cycle memory). *)
let fig6_4_tables s =
  warm s
    (fun (bench, kind) ->
      ignore (submit s ~bench ~latency:2 (Query.Code_size kind)))
    (product (benches ()) [ Pipeline.Static; Pipeline.Spec ]);
  [
    Table.v ~id:"fig6_4"
      ~title:"Figure 6-4: Code size increase due to SpD (2 cycle memory latency)"
      ~label_header:"Program" ~columns:[ "Increase" ]
      ~bar_of:(fun r ->
        match spec_bar 0 r with Some v -> Some (v *. 4.0) | None -> None)
      (List.map
         (fun bench ->
           Table.row bench
             [
               pct_cell
                 (Engine.to_float
                    (submit s ~bench ~latency:2 Query.Code_growth));
             ])
         (benches ()));
  ]

(** SpD run-time dynamics: how the transformed code actually behaved —
    per transformed region, how often the alias vs. the speculative
    no-alias version committed, plus squashed guarded operations. *)
let spd_dynamics_tables s =
  warm s
    (fun (bench, latency) ->
      ignore (submit s ~bench ~latency Query.Spd_dynamics))
    (product (benches ()) latencies);
  let dynamics ~bench ~latency =
    Engine.to_dynamics (submit s ~bench ~latency Query.Spd_dynamics)
  in
  let regions latency =
    let total_alias = ref 0 and total_noalias = ref 0 in
    let rows =
      List.concat_map
        (fun bench ->
          match dynamics ~bench ~latency with
          | Engine.Failed _ ->
              [ Table.row bench [ Table.Na; Table.Na; Table.Na; Table.Na ] ]
          | Engine.Ok (d : Pipeline.dynamics) ->
              List.map
                (fun (r : Pipeline.region_dynamics) ->
                  total_alias := !total_alias + r.alias_commits;
                  total_noalias := !total_noalias + r.noalias_commits;
                  Table.row bench
                    [
                      Table.Text
                        (Printf.sprintf "%s/t%d #%d->%d" r.func r.tree_id
                           (fst r.arc) (snd r.arc));
                      Table.Text (Fmt.str "%a" Spd_ir.Memdep.pp_kind r.dep_kind);
                      Table.Int r.alias_commits;
                      Table.Int r.noalias_commits;
                    ])
                d.regions)
        (benches ())
    in
    Table.v
      ~id:(Printf.sprintf "spd_dynamics.lat%d" latency)
      ~title:
        (Printf.sprintf
           "SpD run-time dynamics: version commits per transformed region \
            (%d cycle memory latency)"
           latency)
      ~notes:
        [
          "Each SPEC traversal of a transformed region commits either its";
          "alias version (the run-time address compare found a collision)";
          "or its speculative no-alias version.";
        ]
      ~label_header:"Program"
      ~columns:[ "Region"; "Kind"; "Alias"; "No-alias" ]
      ~footers:
        [
          Table.row "TOTAL"
            [
              Table.Text ""; Table.Text "";
              Table.Int !total_alias; Table.Int !total_noalias;
            ];
        ]
      rows
  in
  let totals =
    Table.v ~id:"spd_dynamics.totals"
      ~title:"SpD run-time dynamics: per-benchmark totals"
      ~label_header:"Program"
      ~columns:[ "Latency"; "Regions"; "Alias"; "No-alias"; "Squashed" ]
      (List.concat_map
         (fun bench ->
           List.filter_map
             (fun latency ->
               match dynamics ~bench ~latency with
               | Engine.Failed _ -> None
               | Engine.Ok (d : Pipeline.dynamics) ->
                   Some
                     (Table.row bench
                        [
                          Table.Int latency;
                          Table.Int (List.length d.regions);
                          Table.Int
                            (List.fold_left
                               (fun a (r : Pipeline.region_dynamics) ->
                                 a + r.alias_commits)
                               0 d.regions);
                          Table.Int
                            (List.fold_left
                               (fun a (r : Pipeline.region_dynamics) ->
                                 a + r.noalias_commits)
                               0 d.regions);
                          Table.Int d.squashed;
                        ]))
             latencies)
         (benches ()))
  in
  List.map regions latencies @ [ totals ]

(** Corpus-wide SpD opportunity statistics: the guidance heuristic's
    decision ledger rolled up across the full workload grid — per
    workload × latency the candidate and applied counts, the acceptance
    rate, the gain distribution, and the rejection-reason histogram. *)
let spd_decisions_tables s =
  let module H = Spd_core.Heuristic in
  warm s
    (fun (bench, latency) ->
      ignore (submit s ~bench ~latency Query.Spd_decisions))
    (product (benches ()) latencies);
  let ledger ~bench ~latency =
    Engine.to_decisions (submit s ~bench ~latency Query.Spd_decisions)
  in
  (* short column headers for the rejection verdicts; the notes map
     them back to the full machine-readable strings *)
  let reasons =
    [
      ("not-crit", "rejected:not-critical");
      ("not-ambig", "rejected:not-applicable:arc-not-ambiguous");
      ("interv", "rejected:not-applicable:intervening-reference");
      ("addr-na", "rejected:not-applicable:address-unavailable");
      ("min-gain", "rejected:below-min-gain");
      ("max-apps", "rejected:max-applications");
      ("max-exp", "rejected:max-expansion");
    ]
  in
  let summary latency =
    let rows =
      List.map
        (fun bench ->
          match ledger ~bench ~latency with
          | Engine.Failed _ ->
              Table.row bench
                [ Table.Na; Table.Na; Table.Na; Table.Na; Table.Na ]
          | Engine.Ok ds ->
              let total = List.length ds in
              let applied = List.length (H.applied_decisions ds) in
              let gains = List.map (fun (d : H.decision) -> d.gain) ds in
              let gsum = List.fold_left ( +. ) 0.0 gains in
              let gmax = List.fold_left max neg_infinity gains in
              Table.row bench
                (Table.Int total :: Table.Int applied
                ::
                (if total = 0 then [ Table.Na; Table.Na; Table.Na ]
                 else
                   [
                     Table.Pct
                       (float_of_int applied /. float_of_int total);
                     Table.Num (gsum /. float_of_int total);
                     Table.Num gmax;
                   ])))
        (benches ())
    in
    Table.v
      ~id:(Printf.sprintf "spd_decisions.lat%d" latency)
      ~title:
        (Printf.sprintf
           "SpD opportunity statistics: heuristic decisions (%d cycle \
            memory latency)"
           latency)
      ~notes:
        [
          "candidates: ambiguous arcs the guidance heuristic judged;";
          "gain mean/max: distribution of predicted Gain() over all \
           candidates";
        ]
      ~label_header:"Program"
      ~columns:[ "Cands"; "Applied"; "Accept"; "Gain mean"; "Gain max" ]
      rows
  in
  let histogram latency =
    let totals = Array.make (List.length reasons) 0 in
    let rows =
      List.map
        (fun bench ->
          match ledger ~bench ~latency with
          | Engine.Failed _ ->
              Table.row bench (List.map (fun _ -> Table.Na) reasons)
          | Engine.Ok ds ->
              let hist = H.rejection_histogram ds in
              Table.row bench
                (List.mapi
                   (fun i (_, verdict) ->
                     let n =
                       Option.value ~default:0 (List.assoc_opt verdict hist)
                     in
                     totals.(i) <- totals.(i) + n;
                     Table.Int n)
                   reasons))
        (benches ())
    in
    Table.v
      ~id:(Printf.sprintf "spd_decisions.rejections.lat%d" latency)
      ~title:
        (Printf.sprintf
           "SpD opportunity statistics: rejection reasons (%d cycle \
            memory latency)"
           latency)
      ~notes:
        (List.map
           (fun (short, verdict) ->
             Printf.sprintf "%s: %s" short verdict)
           reasons)
      ~label_header:"Program"
      ~columns:(List.map fst reasons)
      ~footers:
        [
          Table.row "TOTAL"
            (List.map (fun v -> Table.Int v) (Array.to_list totals));
        ]
      rows
  in
  List.concat_map (fun latency -> [ summary latency; histogram latency ]) latencies

(** Translation-validation rollup: the verdict tally per paper grid
    cell.  Wall-clock columns are deliberately absent, so the table is
    a pure function of the grid (the per-application ledger, with
    timings, is [spd validate]'s document). *)
let spd_validate_tables s =
  let module V = Spd_validate.Validate in
  let grid = product (benches ()) latencies in
  warm s
    (fun (bench, latency) -> ignore (submit s ~bench ~latency Query.Spd_verdicts))
    grid;
  let rows =
    List.map
      (fun (bench, latency) ->
        let label = Printf.sprintf "%s/%d" bench latency in
        match
          Engine.to_verdicts (submit s ~bench ~latency Query.Spd_verdicts)
        with
        | Engine.Ok rs ->
            let p, r, u = V.tally rs in
            Table.row label
              [
                Table.Int (List.length rs); Table.Int p; Table.Int r;
                Table.Int u;
              ]
        | Engine.Failed _ ->
            Table.row label [ Table.Na; Table.Na; Table.Na; Table.Na ])
      grid
  in
  [
    Table.v ~id:"validate.grid"
      ~title:"SpD translation validation (verdict tally per grid cell)"
      ~notes:
        [
          "every SpD application symbolically proved equivalent to its";
          "original tree; n/a marks a cell whose validated preparation";
          "failed (see the failure appendix)";
        ]
      ~label_header:"cell"
      ~columns:[ "applications"; "proved"; "refuted"; "unknown" ]
      rows;
  ]

(** Engine report: per-stage wall clock and the session's counters.
    Seconds are wall-clock, hence run-dependent; the counter table is
    deterministic (and excludes the job count, see {!Engine.Stats}). *)
let timings_tables s =
  let st = Engine.Session.stats s in
  [
    Table.v ~id:"timings.stages"
      ~title:"Engine: per-stage wall clock (cumulative, all domains)"
      ~label_header:"Stage" ~columns:[ "Seconds" ]
      (List.map
         (fun (stage, secs) ->
           Table.row (Pipeline.stage_name stage) [ Table.Num secs ])
         st.stage_seconds);
    Table.v ~id:"timings.engine" ~title:"Engine: session counters"
      ~label_header:"Counter" ~columns:[ "Value" ]
      (List.map
         (fun (k, v) -> Table.row k [ Table.Int v ])
         (Engine.Stats.to_alist st));
  ]

(* ------------------------------------------------------------------ *)
(* Pretty wrappers, one per artefact (the historical interface) *)

let render_tables tables s ppf () = List.iter (Table.pp ppf) (tables s)

let table6_1 = render_tables table6_1_tables
let table6_2 = render_tables table6_2_tables
let table6_3 = render_tables table6_3_tables
let table6_4 = render_tables table6_4_tables
let fig6_2 = render_tables fig6_2_tables
let fig6_3 = render_tables fig6_3_tables
let fig6_4 = render_tables fig6_4_tables
let spd_dynamics = render_tables spd_dynamics_tables
let timings = render_tables timings_tables

(** Failure appendix: every cell the session failed to compute, with
    the original exception.  Prints nothing when all cells succeeded —
    appended to artefact output by the CLIs, which also turn a
    non-empty appendix into a nonzero exit status. *)
let failure_appendix s ppf () =
  match Engine.Session.failures s with
  | [] -> ()
  | fs ->
      Fmt.pf ppf "@.Failed cells (%d) — values above rendered as n/a@."
        (List.length fs);
      Fmt.pf ppf "%s@." (String.make 72 '-');
      List.iter (fun f -> Fmt.pf ppf "%a@." Engine.pp_failure f) fs;
      Fmt.pf ppf "%s@." (String.make 72 '-')

let all s ppf () =
  table6_1 s ppf ();
  table6_2 s ppf ();
  table6_4 s ppf ();
  table6_3 s ppf ();
  fig6_2 s ppf ();
  fig6_3 s ppf ();
  fig6_4 s ppf ()
