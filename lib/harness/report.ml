(** Renderers for the paper's tables and figures.

    Each generator prints the same rows/series the paper reports, computed
    from our reproduction.  Absolute numbers differ from the paper's
    proprietary LIFE testbed; EXPERIMENTS.md records the shape
    comparison. *)

module W = Spd_workloads

let latencies = [ 2; 6 ]

(* Figure 6-3's machine widths; settable from the CLI (--widths). *)
let default_widths = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let current_widths = ref default_widths

let set_widths = function
  | [] -> invalid_arg "Report.set_widths: empty width list"
  | ws ->
      List.iter
        (fun w ->
          if w < 1 then
            invalid_arg (Printf.sprintf "Report.set_widths: width %d < 1" w))
        ws;
      current_widths := ws

let widths () = !current_widths

let benches () = List.map (fun (w : W.Workload.t) -> w.name) W.Registry.all

let nrc_benches () =
  List.map (fun (w : W.Workload.t) -> w.name) W.Registry.nrc

let hline ppf width = Fmt.pf ppf "%s@." (String.make width '-')

(* Fan the given grid cells out over the default session's domain pool
   before rendering; the render loops below then only read memoized
   results, so their output is independent of the number of jobs. *)
let warm (f : Engine.Session.t -> 'a -> unit) (cells : 'a list) =
  let s = Experiment.default_session () in
  Engine.Session.parallel_iter s (f s) cells

let product xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(* n/a-aware cell renderer: a failed cell prints [n/a] in its column
   instead of aborting the artefact; the details land in
   [failure_appendix].  [width] is the total column width, including
   the percent sign. *)
let pct width ppf = function
  | Engine.Ok v -> Fmt.pf ppf "%*.1f%%" (width - 1) (100.0 *. v)
  | Engine.Failed _ -> Fmt.pf ppf "%*s" width "n/a"

(* ------------------------------------------------------------------ *)

(** Table 6-1: operation latencies (the machine configuration). *)
let table6_1 ppf () =
  Fmt.pf ppf "@.Table 6-1: Operation latencies@.";
  hline ppf 44;
  Fmt.pf ppf "%-32s %s@." "Operation" "Latency (cyc)";
  hline ppf 44;
  List.iter
    (fun (name, lat) -> Fmt.pf ppf "%-32s %d@." name lat)
    (Spd_machine.Descr.table_6_1 ~mem_latency:2
    |> List.map (fun (n, l) ->
           if n = "Memory loads and stores" then (n, l) else (n, l)));
  Fmt.pf ppf "%-32s 2 or 6@." "Memory loads and stores (swept)";
  hline ppf 44

(** Table 6-2: benchmark descriptions. *)
let table6_2 ppf () =
  Fmt.pf ppf "@.Table 6-2: Benchmark descriptions@.";
  hline ppf 76;
  Fmt.pf ppf "%-10s %-9s %5s  %s@." "Benchmark" "Suite" "Lines" "Description";
  hline ppf 76;
  List.iter
    (fun (w : W.Workload.t) ->
      Fmt.pf ppf "%-10s %-9s %5d  %s@." w.name
        (W.Workload.suite_name w.suite)
        (W.Registry.lines w)
        w.description)
    W.Registry.all;
  hline ppf 76

(** Table 6-3: frequency of SpD application by dependence type. *)
let table6_3 ppf () =
  warm
    (fun s (bench, latency) ->
      ignore (Engine.Session.spd_counts_outcome s ~bench ~latency))
    (product (benches ()) latencies);
  Fmt.pf ppf
    "@.Table 6-3: Frequency of SpD application by dependence type@.";
  hline ppf 64;
  Fmt.pf ppf "%-10s | %-21s | %-21s@." ""
    "2 Cycle Memory Latency" "6 Cycle Memory Latency";
  Fmt.pf ppf "%-10s | %6s %6s %6s | %6s %6s %6s@." "Program" "RAW" "WAR"
    "WAW" "RAW" "WAR" "WAW";
  hline ppf 64;
  let totals = Array.make 6 0 in
  (* a failed cell renders its three columns as n/a and is excluded
     from the TOTAL row *)
  let triple off ppf = function
    | Engine.Ok (r, w, o) ->
        List.iteri (fun i v -> totals.(off + i) <- totals.(off + i) + v)
          [ r; w; o ];
        Fmt.pf ppf "%6d %6d %6d" r w o
    | Engine.Failed _ -> Fmt.pf ppf "%6s %6s %6s" "n/a" "n/a" "n/a"
  in
  List.iter
    (fun bench ->
      let c2 = Experiment.spd_counts_result ~bench ~latency:2 in
      let c6 = Experiment.spd_counts_result ~bench ~latency:6 in
      Fmt.pf ppf "%-10s | %a | %a@." bench (triple 0) c2 (triple 3) c6)
    (benches ());
  hline ppf 64;
  Fmt.pf ppf "%-10s | %6d %6d %6d | %6d %6d %6d@." "TOTAL" totals.(0)
    totals.(1) totals.(2) totals.(3) totals.(4) totals.(5);
  hline ppf 64

(** Table 6-4: the four disambiguators. *)
let table6_4 ppf () =
  Fmt.pf ppf "@.Table 6-4: Disambiguators used in experiments@.";
  hline ppf 60;
  List.iter
    (fun (k, d) -> Fmt.pf ppf "%-10s %s@." k d)
    [
      ("NAIVE", "None");
      ("STATIC", "Static (GCD/Banerjee over affine forms)");
      ("SPEC", "Static followed by SpD");
      ("PERFECT", "Perfect static (profiled superfluous-arc removal)");
    ];
  hline ppf 60

(* ------------------------------------------------------------------ *)

let bar ppf frac =
  (* a signed ASCII bar, 1 character per 2.5% of speedup *)
  let n = int_of_float (Float.abs frac *. 40.0) in
  let n = min n 60 in
  Fmt.pf ppf "%s%s" (if frac < 0.0 then "-" else "") (String.make n '#')

(** Figure 6-2: speedup over NAIVE on a 5-FU machine. *)
let fig6_2 ppf () =
  warm
    (fun s ((bench, latency), kind) ->
      ignore
        (Engine.Session.cycles_outcome s ~bench ~latency kind
           ~width:(Spd_machine.Descr.Fus 5)))
    (product (product (benches ()) latencies) Pipeline.all);
  Fmt.pf ppf "@.Figure 6-2: Speedup over the NAIVE disambiguator (5 FU machine)@.";
  List.iter
    (fun latency ->
      Fmt.pf ppf "@.%d cycle memory latency@." latency;
      hline ppf 72;
      Fmt.pf ppf "%-10s %9s %9s %9s@." "Program" "STATIC" "SPEC" "PERFECT";
      hline ppf 72;
      List.iter
        (fun bench ->
          let s k =
            Experiment.speedup_over_naive_result ~bench ~latency k
              ~width:(Spd_machine.Descr.Fus 5)
          in
          let st = s Pipeline.Static
          and sp = s Pipeline.Spec
          and pf = s Pipeline.Perfect in
          let spec_bar ppf = function
            | Engine.Ok v -> Fmt.pf ppf "   SPEC|%a" bar v
            | Engine.Failed _ -> ()
          in
          Fmt.pf ppf "%-10s %a %a %a%a@." bench (pct 9) st (pct 9) sp
            (pct 9) pf spec_bar sp)
        (benches ());
      hline ppf 72)
    latencies

(** Figure 6-3: speedup of SPEC over STATIC vs machine width (NRC). *)
let fig6_3 ppf () =
  let widths = widths () in
  warm
    (fun s (((bench, latency), width), kind) ->
      ignore
        (Engine.Session.cycles_outcome s ~bench ~latency kind
           ~width:(Spd_machine.Descr.Fus width)))
    (product
       (product (product (nrc_benches ()) latencies) widths)
       [ Pipeline.Static; Pipeline.Spec ]);
  Fmt.pf ppf "@.Figure 6-3: Speedup of SPEC over STATIC (NRC benchmarks)@.";
  List.iter
    (fun latency ->
      Fmt.pf ppf "@.%d cycle memory latency@." latency;
      hline ppf 78;
      Fmt.pf ppf "%-10s" "Program";
      List.iter (fun w -> Fmt.pf ppf " %6d FU" w) widths;
      Fmt.pf ppf "@.";
      hline ppf 78;
      List.iter
        (fun bench ->
          Fmt.pf ppf "%-10s" bench;
          List.iter
            (fun w ->
              let s =
                Experiment.spec_over_static_result ~bench ~latency
                  ~width:(Spd_machine.Descr.Fus w)
              in
              Fmt.pf ppf " %a" (pct 9) s)
            widths;
          Fmt.pf ppf "@.")
        (nrc_benches ());
      hline ppf 78)
    latencies

(** Figure 6-4: code size increase due to SpD (2-cycle memory). *)
let fig6_4 ppf () =
  warm
    (fun s (bench, kind) ->
      ignore (Engine.Session.code_size_outcome s ~bench ~latency:2 kind))
    (product (benches ()) [ Pipeline.Static; Pipeline.Spec ]);
  Fmt.pf ppf "@.Figure 6-4: Code size increase due to SpD (2 cycle memory latency)@.";
  hline ppf 48;
  Fmt.pf ppf "%-10s %12s@." "Program" "Increase";
  hline ppf 48;
  List.iter
    (fun bench ->
      match Experiment.code_growth_result ~bench ~latency:2 with
      | Engine.Ok g ->
          Fmt.pf ppf "%-10s %11.1f%%  %a@." bench (100.0 *. g) bar (g *. 4.0)
      | Engine.Failed _ -> Fmt.pf ppf "%-10s %12s@." bench "n/a")
    (benches ());
  hline ppf 48

(** Failure appendix: every cell the default session failed to compute,
    with the original exception.  Prints nothing when all cells
    succeeded — appended to artefact output by the CLIs, which also turn
    a non-empty appendix into a nonzero exit status. *)
let failure_appendix ppf () =
  match Experiment.failures () with
  | [] -> ()
  | fs ->
      Fmt.pf ppf "@.Failed cells (%d) — values above rendered as n/a@."
        (List.length fs);
      hline ppf 72;
      List.iter (fun f -> Fmt.pf ppf "%a@." Engine.pp_failure f) fs;
      hline ppf 72

(** Engine report: per-stage wall clock and cache statistics of the
    default session's work so far.  Not part of [all]: its numbers are
    wall-clock, hence run-dependent, while every other artefact is
    deterministic. *)
let timings ppf () =
  let st = Engine.Session.stats (Experiment.default_session ()) in
  Fmt.pf ppf "@.Engine: per-stage wall clock (cumulative, all domains)@.";
  hline ppf 44;
  Fmt.pf ppf "%-20s %18s@." "Stage" "Seconds";
  hline ppf 44;
  List.iter
    (fun (stage, secs) ->
      Fmt.pf ppf "%-20s %18.3f@." (Pipeline.stage_name stage) secs)
    st.stage_seconds;
  hline ppf 44;
  Fmt.pf ppf "%a@." Engine.Stats.pp st

let all ppf () =
  table6_1 ppf ();
  table6_2 ppf ();
  table6_4 ppf ();
  table6_3 ppf ();
  fig6_2 ppf ();
  fig6_3 ppf ();
  fig6_4 ppf ()
