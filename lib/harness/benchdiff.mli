(** Bench-report regression tracking ([spd bench diff]).

    Compares two [spd-report/1] or [spd-micro/1] documents cell by
    cell; each table's id decides the polarity of a change
    ([cycles*]/[fig6_4*] lower-better, [fig6_2*]/[fig6_3*]/[ext_*]/
    [micro*] higher-better, [timings*] skipped, everything else
    informational).  A cell regresses when it moves in the bad
    direction by more than the threshold (percent), when a tracked
    value disappears, or when a number turns into an [n/a] cell; an
    [n/a] cell turning into a number counts as an improvement. *)

(** Schema identifier of the JSON document: ["spd-bench-diff/1"]. *)
val schema : string

type polarity = Lower_better | Higher_better | Informational | Skip

val polarity_of_table : string -> polarity
val polarity_name : polarity -> string

type change = {
  table : string;
  row : string;
  column : string;
  old_value : float option;  (** [None]: missing, [n/a] or non-numeric *)
  new_value : float option;
  polarity : polarity;
  regression : bool;
  improvement : bool;
}

type t = {
  threshold : float;  (** percent *)
  compared : int;  (** numeric cell pairs examined *)
  changes : change list;  (** cells that moved, document order *)
  regressions : int;
  improvements : int;
}

(** Relative change in percent; [±infinity] when [old_value] is zero
    and [new_value] is not. *)
val pct_change : old_value:float -> new_value:float -> float

(** Compare two parsed [spd-report/1] documents.  [threshold] is in
    percent (default 0: any worsening counts). *)
val diff :
  ?threshold:float ->
  Spd_telemetry.Json.t -> Spd_telemetry.Json.t -> (t, string) result

(** [diff] on raw document strings. *)
val diff_strings :
  ?threshold:float ->
  old_report:string -> new_report:string -> unit -> (t, string) result

val to_table : t -> Table.t
val to_json : t -> Spd_telemetry.Json.t
val render : Artefact.format -> Format.formatter -> t -> unit
