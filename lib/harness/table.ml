(** Structured report tables.

    Every artefact (paper table, figure, extension experiment) is built
    as data — a {!t} — and only then rendered, so the pretty printer,
    the JSON emitter and the CSV emitter all read the same values and
    cannot drift apart.

    A table is a labelled grid: one label column followed by [columns]
    data columns, with optional grouped super-headers (Table 6-3's
    per-latency column groups), optional footer rows (TOTAL) and
    optional pretty-only bar decoration (the figures' ASCII bars). *)

type cell =
  | Int of int
  | Num of float  (** plain number; pretty-printed with 3 decimals *)
  | Pct of float  (** a fraction; pretty-printed as [12.3%] *)
  | Text of string
  | Na  (** a failed grid cell: [n/a] / JSON [null] *)

type row = { label : string; cells : cell list }

type t = {
  id : string;  (** stable machine key, e.g. ["fig6_2.lat2"] *)
  title : string;
  notes : string list;  (** preamble lines under the title *)
  label_header : string;  (** header of the label column *)
  groups : (string * int) list;
      (** optional super-header: (group label, data columns spanned);
          spans must sum to [List.length columns] when non-empty *)
  columns : string list;
  rows : row list;
  footers : row list;
  bar_of : (row -> float option) option;
      (** pretty-only: per row, the signed fraction to draw as a bar *)
}

let v ?(notes = []) ?(label_header = "") ?(groups = []) ?(footers = [])
    ?bar_of ~id ~title ~columns rows =
  { id; title; notes; label_header; groups; columns; rows; footers; bar_of }

let row label cells = { label; cells }

(* ------------------------------------------------------------------ *)
(* Pretty rendering *)

let cell_text = function
  | Int n -> string_of_int n
  | Num x -> Printf.sprintf "%.3f" x
  | Pct x -> Printf.sprintf "%.1f%%" (100.0 *. x)
  | Text s -> s
  | Na -> "n/a"

let bar frac =
  (* a signed ASCII bar, 1 character per 2.5% of speedup *)
  let n = min (int_of_float (Float.abs frac *. 40.0)) 60 in
  (if frac < 0.0 then "-" else "") ^ String.make n '#'

let is_text = function Text _ -> true | _ -> false

let pp ppf (t : t) =
  let all_rows = t.rows @ t.footers in
  let ncols = List.length t.columns in
  let cells_of r = Array.of_list (List.map cell_text r.cells) in
  let grid = List.map cells_of all_rows in
  let label_w =
    List.fold_left
      (fun w (r : row) -> max w (String.length r.label))
      (max 8 (String.length t.label_header))
      all_rows
  in
  let col_w =
    Array.init ncols (fun i ->
        List.fold_left
          (fun w cs -> if i < Array.length cs then max w (String.length cs.(i)) else w)
          (String.length (List.nth t.columns i))
          grid)
  in
  (* group boundaries get a [" |"] separator, as in the paper's tables *)
  let boundaries =
    match t.groups with
    | [] -> []
    | gs ->
        let _, bs =
          List.fold_left
            (fun (off, bs) (_, span) -> (off + span, (off + span) :: bs))
            (0, []) gs
        in
        (* no separator after the last column *)
        List.filter (fun b -> b < ncols) bs
  in
  let sep_before i = List.mem i boundaries in
  (* text columns left-align; numeric columns right-align *)
  let left_align =
    Array.init ncols (fun i ->
        List.exists
          (fun (r : row) ->
            match List.nth_opt r.cells i with
            | Some c -> is_text c
            | None -> false)
          all_rows)
  in
  let total_width =
    Array.fold_left ( + ) (label_w + ncols) col_w + (2 * List.length boundaries)
  in
  let hline () = Fmt.pf ppf "%s@." (String.make total_width '-') in
  let print_cells cells =
    Array.iteri
      (fun i w ->
        if sep_before i then Fmt.pf ppf " |";
        let s = if i < Array.length cells then cells.(i) else "" in
        if left_align.(i) then Fmt.pf ppf " %-*s" w s
        else Fmt.pf ppf " %*s" w s)
      col_w
  in
  let print_row (r : row) =
    Fmt.pf ppf "%-*s" label_w r.label;
    print_cells (cells_of r);
    (match t.bar_of with
    | Some f -> (
        match f r with
        | Some frac -> Fmt.pf ppf "  %s" (bar frac)
        | None -> ())
    | None -> ());
    Fmt.pf ppf "@."
  in
  Fmt.pf ppf "@.%s@." t.title;
  List.iter (fun n -> Fmt.pf ppf "%s@." n) t.notes;
  hline ();
  (match t.groups with
  | [] -> ()
  | gs ->
      Fmt.pf ppf "%-*s" label_w "";
      let off = ref 0 in
      List.iter
        (fun (g, span) ->
          if sep_before !off then Fmt.pf ppf " |";
          (* the group's width: its columns plus the blanks between them *)
          let w = ref (span - 1) in
          for i = !off to !off + span - 1 do
            w := !w + col_w.(i)
          done;
          Fmt.pf ppf " %-*s" !w g;
          off := !off + span)
        gs;
      Fmt.pf ppf "@.");
  Fmt.pf ppf "%-*s" label_w t.label_header;
  print_cells (Array.of_list t.columns);
  Fmt.pf ppf "@.";
  hline ();
  List.iter print_row t.rows;
  if t.footers <> [] then begin
    hline ();
    List.iter print_row t.footers
  end;
  hline ()

(* ------------------------------------------------------------------ *)
(* Machine-readable rendering *)

module Json = Spd_telemetry.Json

let cell_json = function
  | Int n -> Json.Int n
  | Num x -> Json.Float x
  | Pct x -> Json.Float x
  | Text s -> Json.String s
  | Na -> Json.Null

let row_json (r : row) =
  Json.Obj
    [
      ("label", Json.String r.label);
      ("cells", Json.List (List.map cell_json r.cells));
    ]

(* Grouped tables (Table 6-3's per-latency super-headers) repeat column
   names across groups; machine-readable output qualifies each column
   with its group ("2-cycle memory.RAW") so (row, column) stays a key. *)
let qualified_columns (t : t) : string list =
  if t.groups = [] then t.columns
  else
    let prefixes =
      List.concat_map (fun (g, span) -> List.init span (fun _ -> g)) t.groups
    in
    List.map2 (fun g c -> g ^ "." ^ c) prefixes t.columns

let to_json (t : t) =
  Json.Obj
    [
      ("id", Json.String t.id);
      ("title", Json.String t.title);
      ("label", Json.String t.label_header);
      ("columns", Json.List (List.map (fun c -> Json.String c) (qualified_columns t)));
      ("rows", Json.List (List.map row_json t.rows));
      ("footers", Json.List (List.map row_json t.footers));
    ]

(* CSV long format: one line per cell.  Quoting per RFC 4180. *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let cell_csv = function
  | Int n -> string_of_int n
  | Num x | Pct x -> Printf.sprintf "%.17g" x
  | Text s -> csv_escape s
  | Na -> "n/a"
      (* the one [n/a] encoding, shared with {!cell_text} — the CSV used
         to emit an empty field here, which the bench-diff reader could
         not tell apart from a genuinely absent cell *)

let csv_header = "table,row,column,value"

let to_csv_lines (t : t) : string list =
  let columns = Array.of_list (qualified_columns t) in
  List.concat_map
    (fun (r : row) ->
      List.mapi
        (fun i c ->
          Printf.sprintf "%s,%s,%s,%s" (csv_escape t.id) (csv_escape r.label)
            (csv_escape columns.(i))
            (cell_csv c))
        r.cells)
    (t.rows @ t.footers)
