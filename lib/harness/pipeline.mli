(** The four disambiguation pipelines of Table 6-4.

    {v
    source --lower--> trees --all-pairs arcs-->            NAIVE
    NAIVE  --GCD/Banerjee (affine forms)-->                STATIC
    STATIC --profiled path probabilities--SpD heuristic--> SPEC
    NAIVE  --profiled alias counts, drop superfluous-->    PERFECT
    v}

    Every prepared program is validated to produce the same observable
    behaviour (return value and printed output) as the NAIVE baseline. *)

module Memarcs = Spd_analysis.Memarcs
module Static = Spd_disambig.Static_disambig
module Heuristic = Spd_core.Heuristic
type kind = Naive | Static | Spec | Perfect
val all : kind list
val name : kind -> string
val pp : Format.formatter -> kind -> unit

(** {1 Stages}

    The instrumented stages of a pipeline run, in execution order:
    lowering (performed by the engine before {!prepare}), profiling,
    the disambiguation transforms (static tests + SpD), scheduling and
    timed simulation. *)

type stage = Lower | Profile | Spd | Schedule | Simulate
val stages : stage list
val stage_name : stage -> string
val stage_index : stage -> int

(** {1 Configuration}

    All knobs of [prepare], collapsed into one record so call sites name
    only what they change and the engine can fingerprint a configuration
    for its content-addressed result cache. *)

module Config : sig
  type t = {
    check : bool;  (** verify observable equivalence with NAIVE *)
    validate : bool;
        (** translation-validate every SpD application symbolically
            ({!Spd_validate.Validate.check_application}): a [Refuted]
            verdict raises {!Validation_failed}, an [Unknown] verdict is
            counted and logged, and the prepared record carries the full
            verdict ledger *)
    spd_params : Heuristic.params option;
        (** guidance-heuristic knobs (default: {!Heuristic.default_params}) *)
    graft : bool;  (** unroll loop trees before disambiguation (section 7) *)
    mem_latency : int;  (** memory latency in cycles (paper: 2 and 6) *)
    fuel : int option;
        (** traversal budget for every simulator run (profiling, checking,
            timing); [None] = the simulator's default *)
    deadline : float option;
        (** wall-clock budget in seconds for every simulator run *)
    timer : (stage -> float -> unit) option;
        (** called with the elapsed seconds of every instrumented stage *)
    checker_fault : (unit -> unit) option;
        (** consulted at every per-application checker invocation; the
            engine wires the session's [checker-raise] fault here *)
  }

  (** [check = true], no validation, no parameter overrides, no
      grafting, 2-cycle memory, no budgets, no timer, no checker
      fault. *)
  val default : t

  (** Build a configuration naming only the fields that differ from
      {!default}. *)
  val v :
    ?check:bool ->
    ?validate:bool ->
    ?spd_params:Heuristic.params ->
    ?graft:bool ->
    ?fuel:int ->
    ?deadline:float ->
    ?timer:(stage -> float -> unit) ->
    ?checker_fault:(unit -> unit) ->
    ?mem_latency:int ->
    unit -> t

  (** Canonical encoding of the semantic fields (everything except
      [timer], [checker_fault], [fuel] and [deadline] — budgets can only
      turn a result into a failure, never change a successfully computed
      value); [validate] is likewise excluded, since validation never
      changes the prepared program.  Two configurations with equal
      fingerprints prepare identical programs.  Used by {!Engine}'s
      on-disk cache keys. *)
  val fingerprint : t -> string
end

type prepared = {
  kind : kind;
  config : Config.t;
  mem_latency : int;
  prog : Spd_ir.Prog.t;
  applications : Heuristic.application list;
  decisions : Heuristic.decision list;
      (** the heuristic's full decision ledger (SPEC only) *)
  verdicts : Spd_validate.Validate.report list;
      (** per-application translation-validation ledger, in application
          order (SPEC with [config.validate] only) *)
}

(** Force registration of the [spd.heuristic.{candidates,applied,
    rejected.<reason>}] and [spd.validate.{proved,refuted,unknown}]
    counters, so a metrics snapshot carries them before any SPEC
    pipeline fires them ([spd serve] calls this at startup). *)
val register_metrics : unit -> unit

(** Profile a program: run it once with instrumentation. *)
val profile_of :
  ?fuel:int -> ?deadline:float -> Spd_ir.Prog.t -> Spd_sim.Profile.t

exception Behaviour_mismatch of string

(** Raised by a [config.validate] preparation when the symbolic
    equivalence checker refutes an SpD application; the payload names
    the application and renders the concrete counterexample.  Like any
    checker exception, it propagates out of {!prepare} and the engine's
    protected cell runner contains it to the affected grid cell. *)
exception Validation_failed of string

(** Build pipeline [kind] from a lowered program (no arcs yet) under
    [config] (default {!Config.default}).  [config.check] verifies
    observable equivalence with the unoptimized program — the paper
    validated SpD output the same way. *)
val prepare : ?config:Config.t -> kind -> Spd_ir.Prog.t -> prepared

(** Cycle count of a prepared program on [width] functional units. *)
val cycles : prepared -> width:Spd_machine.Descr.width -> int

(** Static code size in operations (Figure 6-4's metric). *)
val code_size : prepared -> int

(** The paper's speedup metric: [cycles_base / cycles_x - 1]. *)
val speedup : base:int -> this:int -> float

(** {1 SpD run-time dynamics}

    How the transformed code actually behaved: per SpD application, how
    often the alias version vs. the speculative no-alias version
    committed, and how many guarded operations were squashed. *)

type region_dynamics = {
  func : string;
  tree_id : int;
  dep_kind : Spd_ir.Memdep.kind;
  arc : int * int;
  alias_commits : int;
  noalias_commits : int;
}

type dynamics = {
  regions : region_dynamics list;
      (** one row per SpD application, sorted (func, tree, arc) *)
  squashed : int;  (** guarded stores squashed across all watched trees *)
}

(** Re-run a prepared program with a watch on every SpD application.
    Cheap no-op for pipelines without applications (everything but
    SPEC). *)
val dynamics : prepared -> dynamics
