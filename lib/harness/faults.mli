(** Deterministic fault injection for the experiment engine.

    A {!t} is a set of armed faults with private hit counters; the
    engine consults it at well-defined points (cell computation start,
    on-disk cache reads, simulator fuel).  Faults fire
    deterministically, so tests and the CLI reproduce failures exactly.

    The spec grammar accepted by {!parse} is a comma-separated list of

    {v
    cache-corrupt:<n>         corrupt the n-th on-disk cache read (1-based)
    cell-raise:<key>[@<n>]    raise from matching cells ([n] first hits
                              only; default every hit)
    fuel:<n>                  cap every simulation at n tree traversals
    cycles-inflate:<pct>      inflate every reported cycle count by pct%
                              (an injected slowdown for regression-tracker
                              tests; never written to the cache)
    conn-torn-frame:<n>       chaos clients: send n frames truncated
                              mid-body, then disconnect
    conn-garbage-header:<n>   chaos clients: send n unframeable header
                              sections
    conn-stall:<n>            chaos clients: open n connections that go
                              silent mid-frame (slow-loris)
    worker-raise:<n>          daemon: raise from the first n accepted
                              connections, exercising worker supervision
    checker-raise:<n>         raise from the first n per-application
                              transform-checker invocations, exercising
                              per-cell containment of a raising checker
    v}

    [<key>] selects cells by prefix of the engine's cell key,
    [bench/latency/KIND/...] — e.g. [adi/2/SPEC] hits the preparation,
    the summary and every cycle measurement of that grid cell.  The
    [conn-*] counts are budgets for the chaos harness's synthetic
    clients; [worker-raise] is a hook the serve daemon's workers
    consult once per accepted connection; [checker-raise] is consulted
    by the pipeline's composed per-application checker. *)

(** Raised by {!cell_raise} / {!worker_raise} when an armed fault
    fires. *)
exception Injected of string

type t

(** No faults armed; all hooks are no-ops. *)
val none : t

val is_none : t -> bool

(** Parse a fault spec (the [--inject-fault] argument).  Counters start
    fresh, so a parsed spec is good for exactly one engine session. *)
val parse : string -> (t, string) result

val pp : Format.formatter -> t -> unit

(** {1 Engine hooks} *)

(** [corrupt_cache_read t] counts one on-disk cache read and returns
    whether the armed [cache-corrupt] fault selects it. *)
val corrupt_cache_read : t -> bool

(** [cell_raise t ~key] raises {!Injected} iff an armed [cell-raise]
    fault matches [key] (by prefix) and still has hits left. *)
val cell_raise : t -> key:string -> unit

(** Simulator fuel override, if armed. *)
val fuel : t -> int option

(** [inflate_cycles t n] is [n] inflated by the armed [cycles-inflate]
    percentage (identity when none armed).  The engine applies it to
    every reported cycle count — cache hits included — but never to the
    values it persists, so the slowdown is confined to the current
    run. *)
val inflate_cycles : t -> int -> int

(** {1 Daemon hooks} *)

(** [worker_raise t] raises {!Injected} while the armed [worker-raise]
    fault still has hits left.  The serve daemon calls it once per
    accepted connection; its worker supervisor must contain the raise
    and respawn the serving loop. *)
val worker_raise : t -> unit

(** [checker_raise t] raises {!Injected} while the armed [checker-raise]
    fault still has hits left.  The engine wires it into
    {!Pipeline.Config.checker_fault}, so it fires from inside the
    per-application transform checker of a SPEC preparation — the
    documented containment contract ({!Spd_core.Heuristic.run}) is that
    such a raise propagates out of the preparation and the engine's
    protected cell runner records it as that one cell's [Failed]
    outcome, leaving sibling cells untouched. *)
val checker_raise : t -> unit

(** {1 Chaos-client budgets}

    Read by the chaos harness to decide how many misbehaving clients of
    each flavor to run; 0 when the fault is not armed. *)

val conn_torn_frames : t -> int
val conn_garbage_headers : t -> int
val conn_stalls : t -> int
