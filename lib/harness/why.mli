(** Decision-ledger introspection ([spd why]).

    Reads the SPEC pipeline's guidance-heuristic decision ledger
    through the engine's single request path and renders it as data:
    per tree, every candidate ambiguous arc with its [Gain()] numbers,
    static-disambiguation provenance, budgets and verdict, plus a
    summary with the rejection-reason histogram.  The [spd why] CLI,
    the daemon's [why] method and the [spd report spd-decisions]
    artefact all read the same memoized cell through this module. *)

(** Schema identifier of the JSON document: ["spd-decisions/1"]. *)
val schema : string

type t = {
  workload : string;
  mem_latency : int;
  decisions : Spd_core.Heuristic.decision list;
      (** the full ledger, in ledger order: applied entries first (in
          application order), then every surviving ambiguous arc *)
}

(** [analyze session workload] fetches the decision ledger (default
    2-cycle memory).  Raises [Invalid_argument] for an unknown
    workload name and {!Engine.Cell_failed} when the cell failed. *)
val analyze : ?mem_latency:int -> Engine.Session.t -> string -> t

(** The ledger entries matching the [--fn] / [--tree] filters. *)
val selected :
  ?fn:string -> ?tree:int -> t -> Spd_core.Heuristic.decision list

(** Ledger entries grouped per (function, tree id), preserving ledger
    order. *)
val groups :
  Spd_core.Heuristic.decision list ->
  ((string * int) * Spd_core.Heuristic.decision list) list

(** Stable lowercase dependence-kind name ([raw], [war], [waw]). *)
val kind_name : Spd_ir.Memdep.kind -> string

(** One ledger entry as a [spd-decisions/1] decision object. *)
val decision_json : Spd_core.Heuristic.decision -> Spd_telemetry.Json.t

(** The per-workload [spd-decisions/1] document: aggregate counts and
    the rejection histogram, then the ledger grouped per tree. *)
val to_json : ?fn:string -> ?tree:int -> t -> Spd_telemetry.Json.t

(** The per-tree decision table of one group. *)
val decisions_table :
  t -> (string * int) * Spd_core.Heuristic.decision list -> Table.t

(** The program-wide summary over a selection: candidate/applied
    counts, the rejection histogram, the acceptance rate. *)
val summary_table : t -> Spd_core.Heuristic.decision list -> Table.t

(** Every table of a why run: per selected tree the decision table,
    then the summary over the same selection. *)
val tables : ?fn:string -> ?tree:int -> t -> Table.t list

val render :
  ?fn:string ->
  ?tree:int -> Artefact.format -> Format.formatter -> t -> unit
