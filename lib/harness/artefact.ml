(** The artefact registry shared by both CLIs.

    An artefact is a named, self-contained piece of the evaluation — a
    paper table or figure, an extension experiment, the engine timings
    — exposed as a table-data builder so every output format renders
    the same values:

    - [Pretty]: the fixed-width terminal rendering ({!Table.pp});
    - [Json]: one schema-versioned document ([spd-report/1]) holding
      every table, the recorded cell failures and a metrics snapshot
      ([spd-metrics/1]);
    - [Csv]: long format, one [table,row,column,value] line per cell,
      with the metrics counters appended under the pseudo-table
      [metrics]. *)

module Json = Spd_telemetry.Json
module Metrics = Spd_telemetry.Metrics

let report_schema = "spd-report/1"

type format = Pretty | Json | Csv

let format_of_string = function
  | "pretty" -> Some Pretty
  | "json" -> Some Json
  | "csv" -> Some Csv
  | _ -> None

type t = {
  name : string;  (** CLI name, e.g. ["table6_3"] *)
  title : string;  (** one-line description for [--list] *)
  tables : Engine.Session.t -> Table.t list;
      (** warms the required grid cells, then builds the data *)
}

(* The registry.  [all] deliberately excludes [timings] (wall-clock,
   hence run-dependent) — matching the historical behaviour of the
   [all] pretty renderer. *)
let registry : t list =
  [
    { name = "table6_1"; title = "Operation latencies";
      tables = Report.table6_1_tables };
    { name = "table6_2"; title = "Benchmark descriptions";
      tables = Report.table6_2_tables };
    { name = "table6_3"; title = "Frequency of SpD application";
      tables = Report.table6_3_tables };
    { name = "table6_4"; title = "Disambiguators used in experiments";
      tables = Report.table6_4_tables };
    { name = "fig6_2"; title = "Speedup over NAIVE (5 FU)";
      tables = Report.fig6_2_tables };
    { name = "cycles"; title = "Raw simulated cycle counts (5 FU)";
      tables = Report.cycles_tables };
    { name = "fig6_3"; title = "SPEC over STATIC vs machine width";
      tables = Report.fig6_3_tables };
    { name = "fig6_4"; title = "Code size increase due to SpD";
      tables = Report.fig6_4_tables };
    { name = "spd-dynamics";
      title = "SpD run-time dynamics (alias/no-alias commits, squashes)";
      tables = Report.spd_dynamics_tables };
    { name = "spd-decisions";
      title = "SpD opportunity statistics (heuristic decision ledger rollup)";
      tables = Report.spd_decisions_tables };
    { name = "spd-validate";
      title = "SpD translation validation (verdict tally per grid cell)";
      tables = Report.spd_validate_tables };
    { name = "ext_dynamic"; title = "SpD vs hardware dynamic disambiguation";
      tables = Extensions.ext_dynamic_tables };
    { name = "ext_grafting"; title = "Tree grafting";
      tables = Extensions.ext_grafting_tables };
    { name = "ext_params"; title = "Guidance heuristic ablation";
      tables = Extensions.ext_params_tables };
    { name = "timings"; title = "Engine wall clock and counters";
      tables = Report.timings_tables };
  ]

let names () = List.map (fun a -> a.name) registry
let find name = List.find_opt (fun a -> a.name = name) registry

(** One registry line per artefact — the CLIs' [--list] output. *)
let pp_list ppf () =
  let width =
    List.fold_left (fun w a -> max w (String.length a.name)) 0 registry
  in
  List.iter
    (fun a -> Fmt.pf ppf "%-*s  %s@." width a.name a.title)
    registry

(* the default artefact set: the paper's tables and figures, in the
   paper's order, as the historical [all] renderers printed them *)
let paper_set =
  [ "table6_1"; "table6_2"; "table6_4"; "table6_3"; "fig6_2"; "fig6_3";
    "fig6_4" ]

let extension_set = [ "ext_dynamic"; "ext_grafting"; "ext_params" ]

let of_names names =
  List.map
    (fun n ->
      match find n with
      | Some a -> a
      | None -> invalid_arg ("Artefact.of_names: unknown artefact " ^ n))
    names

(* ------------------------------------------------------------------ *)
(* Rendering *)

let failure_json (f : Engine.failure) =
  Json.Obj
    [
      ("key", Json.String f.key);
      ("error", Json.String (Printexc.to_string f.exn));
      ("attempts", Json.Int f.attempts);
      ("elapsed_seconds", Json.Float f.elapsed);
    ]

(** The whole report as one JSON document.  Building the artefact
    tables first (warming every grid cell) and snapshotting metrics and
    failures last, so both cover all the work done. *)
let to_json ~session (arts : t list) : Json.t =
  let artefacts =
    List.map
      (fun a ->
        let tables = a.tables session in
        Json.Obj
          [
            ("name", Json.String a.name);
            ("tables", Json.List (List.map Table.to_json tables));
          ])
      arts
  in
  Json.Obj
    [
      ("schema", Json.String report_schema);
      ("artefacts", Json.List artefacts);
      ( "failures",
        Json.List
          (List.map failure_json (Engine.Session.failures session)) );
      ("metrics", Metrics.snapshot_json (Metrics.snapshot ()));
    ]

let render_csv ~session ppf (arts : t list) =
  Fmt.pf ppf "%s@." Table.csv_header;
  List.iter
    (fun a ->
      List.iter
        (fun t -> List.iter (Fmt.pf ppf "%s@.") (Table.to_csv_lines t))
        (a.tables session))
    arts;
  (* metrics counters as a pseudo-table; histograms are summarised by
     their count and sum *)
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter n -> Fmt.pf ppf "metrics,%s,value,%d@." name n
      | Metrics.Hist h ->
          Fmt.pf ppf "metrics,%s,count,%d@." name h.count;
          Fmt.pf ppf "metrics,%s,sum,%.17g@." name h.sum)
    (Metrics.snapshot ())

(** Render the given artefacts.  [Pretty] appends nothing extra (the
    CLIs add the failure appendix); [Json] emits one document, [Csv]
    one header plus data lines. *)
let render ~session (format : format) ppf (arts : t list) =
  match format with
  | Pretty ->
      List.iter (fun a -> List.iter (Table.pp ppf) (a.tables session)) arts
  | Json -> Fmt.pf ppf "%s@." (Json.to_string (to_json ~session arts))
  | Csv -> render_csv ~session ppf arts
