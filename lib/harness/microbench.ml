(** Hot-path throughput microbenchmarks ([spd bench micro]).

    Measures, per workload, the throughput of the three pipeline hot
    paths the system's performance lives on, plus the end-to-end wall
    clock of a full compile→schedule→simulate run:

    - {b compile}: source → lowered trees → scalar cleanup → dependence
      arcs → static disambiguation (operations per second);
    - {b schedule}: DDG construction + resource-constrained list
      scheduling of every tree of the SPEC program (DDG nodes per
      second);
    - {b simulate}: timed interpretation of the SPEC program
      (traversals per second);
    - {b e2e}: one whole pipeline run, source to simulated cycles
      (runs per second).

    Each stage is repeated until [min_time] seconds of wall clock have
    accumulated, so throughputs are stable without a fixed iteration
    count.  The result renders as the shared table data — so
    [spd bench diff] tracks it with its normal polarity machinery
    ([micro*] tables are higher-better) — and serializes as one
    [spd-micro/1] JSON document, suitable for [spd bench snapshot] into
    {e bench/history/}.

    Alongside the throughputs the document records each workload's
    simulated cycle and traversal counts under the lower-better
    [cycles.micro] table: a determinism anchor.  A hot-path rewrite
    that accidentally changes a schedule shows up as a cycle-count
    regression in the same diff that celebrates its speedup. *)

module Json = Spd_telemetry.Json
module Interp = Spd_sim.Interp

let schema = "spd-micro/1"

type stage_sample = {
  units : string;  (** what [units_per_iter] counts: ops, nodes, ... *)
  units_per_iter : int;
  iters : int;
  secs : float;  (** total wall clock over [iters] iterations *)
  per_sec : float;  (** [iters * units_per_iter / secs] *)
}

type sample = {
  workload : string;
  compile : stage_sample;
  schedule : stage_sample;
  simulate : stage_sample;
  e2e : stage_sample;
  cycles : int;  (** simulated cycles of the SPEC program *)
  traversals : int;  (** tree traversals of one simulated run *)
}

type t = {
  mem_latency : int;
  width : int;
  min_time : float;
  samples : sample list;
}

(* ------------------------------------------------------------------ *)
(* Measurement *)

(** Repeat [f] until at least [min_time] seconds have accumulated
    (always at least once), and fold the wall clock into a
    {!stage_sample}. *)
let measure ~min_time ~units ~units_per_iter (f : unit -> unit) :
    stage_sample =
  let iters = ref 0 in
  let elapsed = ref 0.0 in
  while !iters = 0 || !elapsed < min_time do
    let t0 = Unix.gettimeofday () in
    f ();
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    incr iters
  done;
  let secs = !elapsed in
  {
    units;
    units_per_iter;
    iters = !iters;
    secs;
    per_sec =
      (if secs > 0.0 then
         float_of_int (!iters * units_per_iter) /. secs
       else infinity);
  }

(** Benchmark one workload.  The compile stage runs the STATIC pipeline
    (lowering, cleanup, arc annotation, static disambiguation — no
    profiling runs, so the stage isolates the compiler); schedule and
    simulate run against the SPEC program, which is what the paper's
    experiments schedule and simulate. *)
let run_workload ?(mem_latency = 2) ?(width = 5) ?(min_time = 0.3)
    (w : Spd_workloads.Workload.t) : sample =
  let config = Pipeline.Config.v ~check:false ~mem_latency () in
  let descr =
    { Spd_machine.Descr.width = Spd_machine.Descr.Fus width; mem_latency }
  in
  let compile_once () =
    Pipeline.prepare ~config Pipeline.Static
      (Spd_lang.Lower.compile w.source)
  in
  let spec =
    Pipeline.prepare ~config Pipeline.Spec (Spd_lang.Lower.compile w.source)
  in
  let n_ops = Spd_ir.Prog.code_size spec.prog in
  let timing = Spd_machine.Timing_builder.program descr spec.prog in
  let probe = Interp.run ~timing spec.prog in
  let compile =
    measure ~min_time ~units:"ops"
      ~units_per_iter:(Spd_ir.Prog.code_size (compile_once ()).prog)
      (fun () -> ignore (compile_once ()))
  in
  let schedule =
    measure ~min_time ~units:"nodes" ~units_per_iter:n_ops (fun () ->
        ignore (Spd_machine.Timing_builder.program descr spec.prog))
  in
  let simulate =
    measure ~min_time ~units:"traversals" ~units_per_iter:probe.traversals
      (fun () -> ignore (Interp.run ~timing spec.prog))
  in
  let e2e =
    measure ~min_time ~units:"runs" ~units_per_iter:1 (fun () ->
        let p =
          Pipeline.prepare ~config Pipeline.Spec
            (Spd_lang.Lower.compile w.source)
        in
        let timing = Spd_machine.Timing_builder.program descr p.prog in
        ignore (Interp.run ~timing p.prog))
  in
  {
    workload = w.name;
    compile;
    schedule;
    simulate;
    e2e;
    cycles = probe.cycles;
    traversals = probe.traversals;
  }

(** Benchmark [workloads] (default: the paper's Table 6-2 set plus the
    [matmul300] demo). *)
let run ?(mem_latency = 2) ?(width = 5) ?(min_time = 0.3) ?workloads () : t
    =
  let workloads =
    match workloads with
    | Some ws -> List.map Spd_workloads.Registry.by_name ws
    | None -> Spd_workloads.Registry.all @ Spd_workloads.Registry.extras
  in
  {
    mem_latency;
    width;
    min_time;
    samples =
      List.map (run_workload ~mem_latency ~width ~min_time) workloads;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let to_tables (t : t) : Table.t list =
  [
    Table.v ~id:"micro.throughput"
      ~title:
        (Printf.sprintf
           "Hot-path throughput (%d FU, %d-cycle memory; higher is \
            better)"
           t.width t.mem_latency)
      ~notes:
        [
          Printf.sprintf
            "each stage repeated until >= %.3gs of wall clock" t.min_time;
        ]
      ~label_header:"workload"
      ~columns:
        [ "compile ops/s"; "schedule nodes/s"; "simulate trav/s";
          "e2e runs/s" ]
      (List.map
         (fun s ->
           Table.row s.workload
             [
               Table.Num s.compile.per_sec;
               Table.Num s.schedule.per_sec;
               Table.Num s.simulate.per_sec;
               Table.Num s.e2e.per_sec;
             ])
         t.samples);
    Table.v ~id:"cycles.micro"
      ~title:"Simulated cycles per workload (determinism anchor)"
      ~notes:
        [
          "any movement here means the rewrite changed a schedule, not \
           just its speed";
        ]
      ~label_header:"workload" ~columns:[ "cycles"; "traversals" ]
      (List.map
         (fun s ->
           Table.row s.workload [ Table.Int s.cycles; Table.Int s.traversals ])
         t.samples);
  ]

let stage_json (s : stage_sample) =
  Json.Obj
    [
      ("units", Json.String s.units);
      ("units_per_iter", Json.Int s.units_per_iter);
      ("iters", Json.Int s.iters);
      ("secs", Json.Float s.secs);
      ("per_sec", Json.Float s.per_sec);
    ]

let sample_json (s : sample) =
  Json.Obj
    [
      ("name", Json.String s.workload);
      ("compile", stage_json s.compile);
      ("schedule", stage_json s.schedule);
      ("simulate", stage_json s.simulate);
      ("e2e", stage_json s.e2e);
      ("cycles", Json.Int s.cycles);
      ("traversals", Json.Int s.traversals);
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("mem_latency", Json.Int t.mem_latency);
      ("width", Json.Int t.width);
      ("min_time", Json.Float t.min_time);
      ("tables", Json.List (List.map Table.to_json (to_tables t)));
      ("workloads", Json.List (List.map sample_json t.samples));
    ]

let render (format : Artefact.format) ppf (t : t) =
  match format with
  | Artefact.Pretty -> List.iter (Table.pp ppf) (to_tables t)
  | Artefact.Json -> Fmt.pf ppf "%s@." (Json.to_string (to_json t))
  | Artefact.Csv ->
      Fmt.pf ppf "%s@." Table.csv_header;
      List.iter
        (fun tbl -> List.iter (Fmt.pf ppf "%s@.") (Table.to_csv_lines tbl))
        (to_tables t)

(* ------------------------------------------------------------------ *)
(* Baseline comparison (make perf-smoke) *)

(** Simulate-stage throughput of [workload] in a parsed [spd-micro/1]
    document, for comparing a fresh run against a committed baseline
    snapshot. *)
let simulate_per_sec (doc : Json.t) ~workload : float option =
  match Option.bind (Json.member "schema" doc) Json.to_string_opt with
  | Some s when s = schema ->
      Option.bind (Json.member "workloads" doc) Json.to_list
      |> Option.value ~default:[]
      |> List.find_opt (fun w ->
             Option.bind (Json.member "name" w) Json.to_string_opt
             = Some workload)
      |> fun w ->
      Option.bind w (fun w ->
          Option.bind (Json.member "simulate" w) (fun sim ->
              Option.bind (Json.member "per_sec" sim) Json.to_number))
  | _ -> None
