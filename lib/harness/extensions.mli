(** Experiments beyond the paper's evaluation section, implementing its
    discussion and future-work items:

    - {b hardware dynamic disambiguation} (section 2.3): the
      88110-style small-window load/store reordering alternative, to show
      that SpD's compile-time scope beats small hardware windows;
    - {b tree grafting} (section 7): unrolling loop trees to expose more
      ambiguous pairs to SpD;
    - {b guidance-parameter ablation} (section 5.3): how [MaxExpansion]
      and [MinGain] trade code growth against speedup. *)

module W = Spd_workloads
module H = Spd_core.Heuristic

(** {1 Experiment data} — one table list per experiment, each taking
    its session explicitly; see {!Report} for the data-then-render
    convention. *)

val ext_dynamic_tables : Engine.Session.t -> Table.t list
val ext_grafting_tables : Engine.Session.t -> Table.t list
val ext_params_tables : Engine.Session.t -> Table.t list

(** Extension A: SPEC vs hardware dynamic disambiguation windows. *)
val ext_dynamic : Engine.Session.t -> Format.formatter -> unit -> unit

(** Extension B: the effect of tree grafting (loop unrolling) on SpD. *)
val ext_grafting : Engine.Session.t -> Format.formatter -> unit -> unit

(** Extension C: guidance heuristic parameter ablation. *)
val ext_params : Engine.Session.t -> Format.formatter -> unit -> unit
val all : Engine.Session.t -> Format.formatter -> unit -> unit
