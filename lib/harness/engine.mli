(** Domain-parallel experiment engine.

    The paper's evaluation grid — benchmarks × pipelines × memory
    latencies × machine widths — is embarrassingly parallel and every
    cell is a pure function of the workload source and the pipeline
    configuration.  A {!Session} owns all mutable state needed to
    exploit that: a fixed-size pool of OCaml 5 domains, promise-style
    per-cell memoization (each cell computed exactly once; concurrent
    requesters block on its promise), an optional content-addressed
    on-disk result cache under [_spd_cache/], and per-stage wall-clock
    instrumentation.

    Results are deterministic in the number of jobs: the schedule
    changes only who computes a value, never the value. *)

(** Bumped whenever the compiler, scheduler or simulator change in a
    way that affects emitted numbers; invalidates the on-disk cache. *)
val cache_version : string

module Stats : sig
  type t = {
    jobs : int;  (** pool size of the session *)
    lowerings : int;  (** source programs compiled to IR *)
    preparations : int;  (** pipelines actually run (not cache hits) *)
    simulations : int;  (** schedule+simulate runs actually performed *)
    disk_hits : int;  (** results served from the on-disk cache *)
    disk_misses : int;  (** on-disk lookups that fell through *)
    stage_seconds : (Pipeline.stage * float) list;
        (** cumulative wall clock per pipeline stage, across all domains *)
  }

  val pp : Format.formatter -> t -> unit
end

module Session : sig
  type t

  (** [create ()] makes a fresh session.

      [jobs] bounds the concurrency (spawned domains plus the calling
      one); it defaults to {!Domain.recommended_domain_count}.  Worker
      domains are spawned lazily on the first parallel batch, so a
      session used sequentially costs nothing.

      [disk_cache] (default [false]) enables the content-addressed
      result cache in [cache_dir] (default ["_spd_cache"], created on
      demand; silently disabled if the directory cannot be used).

      [config] is the pipeline configuration every cell is built with;
      its [mem_latency] is overridden per cell and its [timer], if any,
      is composed with the session's stage instrumentation. *)
  val create :
    ?jobs:int ->
    ?disk_cache:bool ->
    ?cache_dir:string ->
    ?config:Pipeline.Config.t ->
    unit -> t

  (** Join the session's worker domains.  The session remains usable
      sequentially afterwards. *)
  val close : t -> unit

  val jobs : t -> int
  val stats : t -> Stats.t

  (** {1 Memoized grid cells}

    All accessors are safe to call from any domain; each underlying
    computation happens exactly once per session. *)

  (** Lowered IR of a built-in benchmark. *)
  val lowered : t -> string -> Spd_ir.Prog.t

  (** Prepared pipeline for a benchmark at a memory latency. *)
  val prepared :
    t -> bench:string -> latency:int -> Pipeline.kind -> Pipeline.prepared

  (** Measured cycle count (disk-cacheable: a warm cache serves it
      without preparing the pipeline at all). *)
  val cycles :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> int

  (** Static code size in operations (disk-cacheable). *)
  val code_size :
    t -> bench:string -> latency:int -> Pipeline.kind -> int

  (** SpD application counts by dependence kind — a Table 6-3 row
      (disk-cacheable). *)
  val spd_counts : t -> bench:string -> latency:int -> int * int * int

  (** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
  val speedup_over_naive :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> float

  (** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
  val spec_over_static :
    t ->
    bench:string -> latency:int -> width:Spd_machine.Descr.width -> float

  (** Code growth of SPEC relative to STATIC (Figure 6-4). *)
  val code_growth : t -> bench:string -> latency:int -> float

  (** {1 Fan-out}

    [parallel_map t f xs] applies [f] to every element of [xs] on the
    session's pool, preserving order.  The calling domain participates
    in draining the queue, so nested fan-out from inside [f] cannot
    starve the pool.  The first exception raised by any [f x] is
    re-raised after the whole batch has settled.  With [jobs = 1] this
    is exactly [List.map]. *)

  val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
  val parallel_iter : t -> ('a -> unit) -> 'a list -> unit
end
