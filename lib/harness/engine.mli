(** Domain-parallel experiment engine.

    The paper's evaluation grid — benchmarks × pipelines × memory
    latencies × machine widths — is embarrassingly parallel and every
    cell is a pure function of the workload source and the pipeline
    configuration.  A {!Session} owns all mutable state needed to
    exploit that: a fixed-size pool of OCaml 5 domains, promise-style
    per-cell memoization (each cell computed exactly once; concurrent
    requesters block on its promise), an optional content-addressed
    on-disk result cache under [_spd_cache/], and per-stage wall-clock
    instrumentation.

    Work is requested through one typed entry point:
    {!Session.submit} takes a {!Query.t} — artefact kind, cell
    coordinates, optional per-request budgets — and returns a
    {!value} {!outcome}.  Every consumer (the CLIs, the report
    builders, the [spd serve] daemon) goes through this single path,
    so a served request and the equivalent CLI invocation read the
    same memoized cell and emit identical values.  The historical
    per-artefact accessors survive as deprecated raising shims over
    [submit].

    Failures are contained per cell: a cell that keeps raising after
    its retry budget is recorded as a {!failure} and surfaced as a
    [Failed] {!outcome}; the rest of the batch still completes.  The
    on-disk cache is self-healing — corrupt or truncated entries are
    detected by checksum, evicted and recomputed.

    Results are deterministic in the number of jobs: the schedule
    changes only who computes a value, never the value. *)

(** Bumped whenever the compiler, scheduler, simulator or the on-disk
    entry format change in a way that affects emitted numbers or
    decoding; invalidates the on-disk cache. *)
val cache_version : string

(** Force registration of the engine-level counters — including the
    [spd.cache.{hit,miss,evict}] aliases surfaced by [spd cache stats]
    — so a metrics snapshot carries them before any cell fires them
    ([spd serve] calls this at startup). *)
val register_metrics : unit -> unit

(** {1 Per-cell outcomes} *)

type failure = {
  key : string;  (** the cell key, [bench/latency/KIND/metric] *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;  (** how many times the cell was attempted *)
  elapsed : float;  (** wall-clock seconds across all attempts *)
}

type 'a outcome = Ok of 'a | Failed of failure

(** Raised by the raising accessors when the underlying cell failed. *)
exception Cell_failed of failure

val pp_failure : Format.formatter -> failure -> unit

(** {1 Typed queries}

    A {!Query.t} names one grid cell's artefact — the only request
    shape the engine accepts.  Optional [fuel]/[deadline] budgets act
    as per-request quotas: they can only {e tighten} the session's own
    budgets, and a budget-carrying query gets its own memo cell (so a
    quota-starved tenant's failure never poisons the unbudgeted cell,
    and N identical budgeted queries still cost one computation). *)

module Query : sig
  (** What to compute for the (bench, latency) cell. *)
  type artefact =
    | Cycles of { kind : Pipeline.kind; width : Spd_machine.Descr.width }
        (** measured cycle count (disk-cacheable) *)
    | Code_size of Pipeline.kind
        (** static code size in operations (disk-cacheable) *)
    | Spd_counts
        (** SpD applications by dependence kind — a Table 6-3 row *)
    | Spd_dynamics
        (** run-time alias/no-alias commit counts of the SPEC pipeline *)
    | Spd_decisions
        (** the guidance heuristic's full decision ledger (SPEC) *)
    | Spd_verdicts
        (** per-application translation-validation ledger of the SPEC
            pipeline (disk-cacheable) *)
    | Speedup_over_naive of {
        kind : Pipeline.kind;
        width : Spd_machine.Descr.width;
      }  (** the metric of Figure 6-2 *)
    | Spec_over_static of { width : Spd_machine.Descr.width }
        (** the metric of Figure 6-3 *)
    | Code_growth  (** SPEC code size relative to STATIC (Figure 6-4) *)

  type t = private {
    bench : string;  (** built-in workload name *)
    latency : int;  (** memory latency in cycles (paper: 2 and 6) *)
    artefact : artefact;
    fuel : int option;
        (** per-request traversal quota; tightens the session budget *)
    deadline : float option;
        (** per-request wall-clock quota in seconds; tightens the
            session budget *)
  }

  (** Build a query.  Raises [Invalid_argument] on a non-positive
      [latency], [fuel] or [deadline]. *)
  val v :
    ?fuel:int ->
    ?deadline:float ->
    bench:string -> latency:int -> artefact -> t

  (** Stable lowercase artefact-kind name ([cycles], [code-size],
      [spd-counts], [spd-dynamics], [spd-decisions], [spd-validate],
      [speedup-over-naive], [spec-over-static], [code-growth]) — the
      wire spelling of the [spd serve] protocol. *)
  val artefact_name : artefact -> string

  (** All artefact-kind names, for diagnostics. *)
  val artefact_names : string list

  (** Canonical human-readable request key,
      [bench/latency/artefact[/KIND][/width][+fuel=N][+deadline=S]]. *)
  val key : t -> string
end

(** The result of a query: what kind of value it carries follows the
    query's {!Query.artefact} (asserted by the [to_*] projections). *)
type value =
  | Int of int  (** [Cycles], [Code_size] *)
  | Float of float
      (** [Speedup_over_naive], [Spec_over_static], [Code_growth] *)
  | Counts of int * int * int  (** [Spd_counts]: RAW, WAR, WAW *)
  | Dynamics of Pipeline.dynamics  (** [Spd_dynamics] *)
  | Decisions of Spd_core.Heuristic.decision list  (** [Spd_decisions] *)
  | Verdicts of Spd_validate.Validate.report list  (** [Spd_verdicts] *)

(** Projections out of a {!value} outcome; raise [Invalid_argument]
    when the value kind does not match (a caller bug — [submit] always
    returns the kind implied by the artefact). *)

val to_int : value outcome -> int outcome
val to_float : value outcome -> float outcome
val to_counts : value outcome -> (int * int * int) outcome
val to_dynamics : value outcome -> Pipeline.dynamics outcome
val to_decisions :
  value outcome -> Spd_core.Heuristic.decision list outcome

val to_verdicts :
  value outcome -> Spd_validate.Validate.report list outcome

module Stats : sig
  type t = {
    jobs : int;  (** pool size of the session *)
    lowerings : int;  (** source programs compiled to IR *)
    preparations : int;  (** pipelines actually run (not cache hits) *)
    simulations : int;  (** schedule+simulate runs actually performed *)
    disk_hits : int;  (** results served from the on-disk cache *)
    disk_misses : int;  (** on-disk lookups that fell through *)
    disk_evictions : int;
        (** corrupt on-disk entries evicted and recomputed *)
    cell_retries : int;  (** failed attempts that were retried *)
    cell_failures : int;  (** cells that exhausted their attempts *)
    stage_seconds : (Pipeline.stage * float) list;
        (** cumulative wall clock per pipeline stage, across all domains *)
  }

  (** The counters as a sorted association list, [jobs] excluded — every
      included counter is a function of the requested grid alone, so the
      list (and {!pp}'s rendering of it) is bit-identical across job
      counts. *)
  val to_alist : t -> (string * int) list

  (** Sorted [key=value] pairs separated by ["; "]. *)
  val pp : Format.formatter -> t -> unit
end

module Session : sig
  type t

  (** [create ()] makes a fresh session.

      [jobs] bounds the concurrency (spawned domains plus the calling
      one); it defaults to {!Domain.recommended_domain_count}.  Worker
      domains are spawned lazily on the first parallel batch, so a
      session used sequentially costs nothing.

      [disk_cache] (default [false]) enables the content-addressed
      result cache in [cache_dir] (default ["_spd_cache"], created on
      demand; silently disabled if the directory cannot be used).

      [retries] (default [1]) is the number of attempts per cell before
      a failure is recorded.  [deadline] is a per-cell wall-clock budget
      in seconds: once it has elapsed, a failing cell is not retried.
      [fuel] bounds the simulator's tree traversals for every run of the
      session (profiling, checking, timing).  Both act as caps on
      per-request {!Query.t} budgets.

      [faults] arms deterministic fault injection (see {!Faults}); an
      armed [fuel:<n>] fault overrides [fuel].

      [config] is the pipeline configuration every cell is built with;
      its [mem_latency] is overridden per cell and its [timer], if any,
      is composed with the session's stage instrumentation. *)
  val create :
    ?jobs:int ->
    ?disk_cache:bool ->
    ?cache_dir:string ->
    ?retries:int ->
    ?deadline:float ->
    ?fuel:int ->
    ?faults:Faults.t ->
    ?config:Pipeline.Config.t ->
    unit -> t

  (** Join the session's worker domains.  The session remains usable
      sequentially afterwards. *)
  val close : t -> unit

  val jobs : t -> int
  val stats : t -> Stats.t

  (** Every failure recorded so far, sorted by cell key. *)
  val failures : t -> failure list

  (** {1 The request path}

    [submit] is safe to call from any domain; each underlying
    computation (including a failure) happens exactly once per session
    and budget — concurrent identical queries piggyback on the promise
    of whoever got there first, so a burst of N duplicates costs one
    computation.  A failed cell comes back as [Failed] (renderers
    print [n/a]); [submit] itself never raises on a contained cell
    failure. *)

  val submit : t -> Query.t -> value outcome

  (** {1 Pipeline materialization}

    The two compile-stage accessors that return in-memory artefacts
    rather than {!value}s — used by {!Explain} and the extension
    experiments, and not servable over the wire.  Not
    failure-contained: an unknown benchmark or compile error raises. *)

  (** Lowered IR of a built-in benchmark. *)
  val lowered : t -> string -> Spd_ir.Prog.t

  (** Prepared pipeline for a benchmark at a memory latency. *)
  val prepared :
    t -> bench:string -> latency:int -> Pipeline.kind -> Pipeline.prepared

  (** {1 Deprecated raising shims}

    One per artefact kind, each a thin wrapper over {!submit} with the
    historical signature; they raise {!Cell_failed} on a failed cell.
    New code should build a {!Query.t} and call {!submit}. *)

  val cycles :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> int

  val code_size :
    t -> bench:string -> latency:int -> Pipeline.kind -> int

  val spd_counts : t -> bench:string -> latency:int -> int * int * int

  val spd_dynamics : t -> bench:string -> latency:int -> Pipeline.dynamics

  val spd_decisions :
    t -> bench:string -> latency:int -> Spd_core.Heuristic.decision list

  val spd_verdicts :
    t -> bench:string -> latency:int -> Spd_validate.Validate.report list

  val speedup_over_naive :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> float

  val spec_over_static :
    t ->
    bench:string -> latency:int -> width:Spd_machine.Descr.width -> float

  val code_growth : t -> bench:string -> latency:int -> float

  (** {1 Fan-out}

    [parallel_map t f xs] applies [f] to every element of [xs] on the
    session's pool, preserving order.  The calling domain participates
    in draining the queue, so nested fan-out from inside [f] cannot
    starve the pool.  The first exception raised by any [f x] is
    re-raised after the whole batch has settled.  With [jobs = 1] this
    is exactly [List.map]. *)

  val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
  val parallel_iter : t -> ('a -> unit) -> 'a list -> unit
end
