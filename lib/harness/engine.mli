(** Domain-parallel experiment engine.

    The paper's evaluation grid — benchmarks × pipelines × memory
    latencies × machine widths — is embarrassingly parallel and every
    cell is a pure function of the workload source and the pipeline
    configuration.  A {!Session} owns all mutable state needed to
    exploit that: a fixed-size pool of OCaml 5 domains, promise-style
    per-cell memoization (each cell computed exactly once; concurrent
    requesters block on its promise), an optional content-addressed
    on-disk result cache under [_spd_cache/], and per-stage wall-clock
    instrumentation.

    Failures are contained per cell: a cell that keeps raising after
    its retry budget is recorded as a {!failure} and surfaced as a
    [Failed] {!outcome}; the rest of the batch still completes.  The
    on-disk cache is self-healing — corrupt or truncated entries are
    detected by checksum, evicted and recomputed.

    Results are deterministic in the number of jobs: the schedule
    changes only who computes a value, never the value. *)

(** Bumped whenever the compiler, scheduler, simulator or the on-disk
    entry format change in a way that affects emitted numbers or
    decoding; invalidates the on-disk cache. *)
val cache_version : string

(** {1 Per-cell outcomes} *)

type failure = {
  key : string;  (** the cell key, [bench/latency/KIND/metric] *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
  attempts : int;  (** how many times the cell was attempted *)
  elapsed : float;  (** wall-clock seconds across all attempts *)
}

type 'a outcome = Ok of 'a | Failed of failure

(** Raised by the raising accessors when the underlying cell failed. *)
exception Cell_failed of failure

val pp_failure : Format.formatter -> failure -> unit

module Stats : sig
  type t = {
    jobs : int;  (** pool size of the session *)
    lowerings : int;  (** source programs compiled to IR *)
    preparations : int;  (** pipelines actually run (not cache hits) *)
    simulations : int;  (** schedule+simulate runs actually performed *)
    disk_hits : int;  (** results served from the on-disk cache *)
    disk_misses : int;  (** on-disk lookups that fell through *)
    disk_evictions : int;
        (** corrupt on-disk entries evicted and recomputed *)
    cell_retries : int;  (** failed attempts that were retried *)
    cell_failures : int;  (** cells that exhausted their attempts *)
    stage_seconds : (Pipeline.stage * float) list;
        (** cumulative wall clock per pipeline stage, across all domains *)
  }

  (** The counters as a sorted association list, [jobs] excluded — every
      included counter is a function of the requested grid alone, so the
      list (and {!pp}'s rendering of it) is bit-identical across job
      counts. *)
  val to_alist : t -> (string * int) list

  (** Sorted [key=value] pairs separated by ["; "]. *)
  val pp : Format.formatter -> t -> unit
end

module Session : sig
  type t

  (** [create ()] makes a fresh session.

      [jobs] bounds the concurrency (spawned domains plus the calling
      one); it defaults to {!Domain.recommended_domain_count}.  Worker
      domains are spawned lazily on the first parallel batch, so a
      session used sequentially costs nothing.

      [disk_cache] (default [false]) enables the content-addressed
      result cache in [cache_dir] (default ["_spd_cache"], created on
      demand; silently disabled if the directory cannot be used).

      [retries] (default [1]) is the number of attempts per cell before
      a failure is recorded.  [deadline] is a per-cell wall-clock budget
      in seconds: once it has elapsed, a failing cell is not retried.
      [fuel] bounds the simulator's tree traversals for every run of the
      session (profiling, checking, timing).

      [faults] arms deterministic fault injection (see {!Faults}); an
      armed [fuel:<n>] fault overrides [fuel].

      [config] is the pipeline configuration every cell is built with;
      its [mem_latency] is overridden per cell and its [timer], if any,
      is composed with the session's stage instrumentation. *)
  val create :
    ?jobs:int ->
    ?disk_cache:bool ->
    ?cache_dir:string ->
    ?retries:int ->
    ?deadline:float ->
    ?fuel:int ->
    ?faults:Faults.t ->
    ?config:Pipeline.Config.t ->
    unit -> t

  (** Join the session's worker domains.  The session remains usable
      sequentially afterwards. *)
  val close : t -> unit

  val jobs : t -> int
  val stats : t -> Stats.t

  (** Every failure recorded so far, sorted by cell key. *)
  val failures : t -> failure list

  (** {1 Memoized grid cells}

    All accessors are safe to call from any domain; each underlying
    computation (including a failure) happens exactly once per
    session.  The [_outcome] variants never raise on a failed cell;
    the plain variants raise {!Cell_failed}. *)

  (** Lowered IR of a built-in benchmark.  Not failure-contained: an
      unknown benchmark or compile error raises. *)
  val lowered : t -> string -> Spd_ir.Prog.t

  (** Prepared pipeline for a benchmark at a memory latency.  Not
      failure-contained; cell accessors below wrap it. *)
  val prepared :
    t -> bench:string -> latency:int -> Pipeline.kind -> Pipeline.prepared

  (** Measured cycle count (disk-cacheable: a warm cache serves it
      without preparing the pipeline at all). *)
  val cycles_outcome :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> int outcome

  val cycles :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> int

  (** Static code size in operations (disk-cacheable). *)
  val code_size_outcome :
    t -> bench:string -> latency:int -> Pipeline.kind -> int outcome

  val code_size :
    t -> bench:string -> latency:int -> Pipeline.kind -> int

  (** SpD application counts by dependence kind — a Table 6-3 row
      (disk-cacheable). *)
  val spd_counts_outcome :
    t -> bench:string -> latency:int -> (int * int * int) outcome

  val spd_counts : t -> bench:string -> latency:int -> int * int * int

  (** Run-time dynamics of the SPEC pipeline's SpD applications:
      alias/no-alias version commits per transformed region plus
      squashed guarded operations (disk-cacheable). *)
  val spd_dynamics_outcome :
    t -> bench:string -> latency:int -> Pipeline.dynamics outcome

  val spd_dynamics : t -> bench:string -> latency:int -> Pipeline.dynamics

  (** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
  val speedup_over_naive_outcome :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> float outcome

  val speedup_over_naive :
    t ->
    bench:string ->
    latency:int ->
    Pipeline.kind ->
    width:Spd_machine.Descr.width -> float

  (** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
  val spec_over_static_outcome :
    t ->
    bench:string ->
    latency:int ->
    width:Spd_machine.Descr.width -> float outcome

  val spec_over_static :
    t ->
    bench:string -> latency:int -> width:Spd_machine.Descr.width -> float

  (** Code growth of SPEC relative to STATIC (Figure 6-4). *)
  val code_growth_outcome :
    t -> bench:string -> latency:int -> float outcome

  val code_growth : t -> bench:string -> latency:int -> float

  (** {1 Fan-out}

    [parallel_map t f xs] applies [f] to every element of [xs] on the
    session's pool, preserving order.  The calling domain participates
    in draining the queue, so nested fan-out from inside [f] cannot
    starve the pool.  The first exception raised by any [f x] is
    re-raised after the whole batch has settled.  With [jobs = 1] this
    is exactly [List.map]. *)

  val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list
  val parallel_iter : t -> ('a -> unit) -> 'a list -> unit
end
