(** The artefact registry shared by both CLIs.

    An artefact is a named, self-contained piece of the evaluation — a
    paper table or figure, an extension experiment, the engine timings
    — exposed as a table-data builder so every output format renders
    the same values. *)

(** The JSON document's schema key ([spd-report/1]); bump on any
    incompatible change to the document layout. *)
val report_schema : string

type format = Pretty | Json | Csv

val format_of_string : string -> format option

type t = {
  name : string;  (** CLI name, e.g. ["table6_3"] *)
  title : string;  (** one-line description for [--list] *)
  tables : Engine.Session.t -> Table.t list;
      (** warms the required grid cells, then builds the data *)
}

val registry : t list
val names : unit -> string list
val find : string -> t option

(** One registry line per artefact — the CLIs' [--list] output. *)
val pp_list : Format.formatter -> unit -> unit

(** The paper's tables and figures in the historical [all] order. *)
val paper_set : string list

(** The extension experiments. *)
val extension_set : string list

(** Resolve names; raises [Invalid_argument] on an unknown one. *)
val of_names : string list -> t list

(** The whole report as one [spd-report/1] JSON document: every table
    of every artefact, the recorded cell failures, and a metrics
    snapshot taken after all tables were built. *)
val to_json : session:Engine.Session.t -> t list -> Spd_telemetry.Json.t

(** Render the given artefacts.  [Pretty] appends nothing extra (the
    CLIs add the failure appendix); [Json] emits one document, [Csv]
    one header plus data lines with metrics appended under the
    pseudo-table [metrics]. *)
val render :
  session:Engine.Session.t -> format -> Format.formatter -> t list -> unit
