(** Renderers for the paper's tables and figures.

    Each generator prints the same rows/series the paper reports, computed
    from our reproduction.  Absolute numbers differ from the paper's
    proprietary LIFE testbed; EXPERIMENTS.md records the shape
    comparison. *)

module W = Spd_workloads
val latencies : int list

(** Figure 6-3's machine widths (default [1..8]); [set_widths]
    overrides them process-wide (the CLI's [--widths] flag) and rejects
    an empty or non-positive list with [Invalid_argument]. *)
val default_widths : int list

val widths : unit -> int list
val set_widths : int list -> unit
val benches : unit -> string list
val nrc_benches : unit -> string list
val hline : Format.formatter -> int -> unit

(** Table 6-1: operation latencies (the machine configuration). *)
val table6_1 : Format.formatter -> unit -> unit

(** Table 6-2: benchmark descriptions. *)
val table6_2 : Format.formatter -> unit -> unit

(** Table 6-3: frequency of SpD application by dependence type. *)
val table6_3 : Format.formatter -> unit -> unit

(** Table 6-4: the four disambiguators. *)
val table6_4 : Format.formatter -> unit -> unit
val bar : Format.formatter -> float -> unit

(** Figure 6-2: speedup over NAIVE on a 5-FU machine. *)
val fig6_2 : Format.formatter -> unit -> unit

(** Figure 6-3: speedup of SPEC over STATIC vs machine width (NRC). *)
val fig6_3 : Format.formatter -> unit -> unit

(** Figure 6-4: code size increase due to SpD (2-cycle memory). *)
val fig6_4 : Format.formatter -> unit -> unit

(** Failure appendix: every cell the default session failed to compute,
    with the original exception.  Prints nothing when all cells
    succeeded — appended to artefact output by the CLIs, which also turn
    a non-empty appendix into a nonzero exit status. *)
val failure_appendix : Format.formatter -> unit -> unit

(** Engine report: per-stage wall clock and cache statistics of the
    default session's work so far.  Not part of [all]: its numbers are
    wall-clock, hence run-dependent, while every other artefact is
    deterministic. *)
val timings : Format.formatter -> unit -> unit

val all : Format.formatter -> unit -> unit
