(** The paper's tables and figures, built as data.

    Each artefact is computed into {!Table.t} values first (the
    [*_tables] functions) and only then rendered, so the pretty
    printers here and the machine-readable emitters in {!Artefact} read
    the exact same values.  Every builder takes its
    {!Engine.Session.t} explicitly and reads grid cells through
    {!Engine.Session.submit} — the same path the CLIs and the
    [spd serve] daemon use, which is what makes served and CLI JSON
    byte-identical.  Absolute numbers differ from the paper's
    proprietary LIFE testbed; EXPERIMENTS.md records the shape
    comparison. *)

module W = Spd_workloads
val latencies : int list

(** Figure 6-3's machine widths (default [1..8]); [set_widths]
    overrides them process-wide (the CLI's [--widths] flag) and rejects
    an empty or non-positive list with [Invalid_argument].  This is the
    one process-wide rendering knob: the CLIs set it once at startup,
    and the daemon never touches it. *)
val default_widths : int list

val widths : unit -> int list
val set_widths : int list -> unit
val benches : unit -> string list
val nrc_benches : unit -> string list

(** {1 Artefact data}

    Each builder warms the required grid cells on the session's domain
    pool, then assembles tables from the memoized results — the values
    are therefore independent of the number of jobs. *)

val table6_1_tables : Engine.Session.t -> Table.t list
val table6_2_tables : Engine.Session.t -> Table.t list
val table6_3_tables : Engine.Session.t -> Table.t list
val table6_4_tables : Engine.Session.t -> Table.t list
val fig6_2_tables : Engine.Session.t -> Table.t list

(** Raw cycle counts on the 5-FU machine, one table per memory latency
    ([cycles.lat2], …) — the regression tracker's primary lower-is-better
    input ([spd bench diff]).  Not part of the paper set. *)
val cycles_tables : Engine.Session.t -> Table.t list
val fig6_3_tables : Engine.Session.t -> Table.t list
val fig6_4_tables : Engine.Session.t -> Table.t list

(** SpD run-time dynamics: per transformed region, how often the alias
    vs. the speculative no-alias version committed, plus squashed
    guarded operations. *)
val spd_dynamics_tables : Engine.Session.t -> Table.t list

(** Corpus-wide SpD opportunity statistics: the guidance heuristic's
    decision ledger rolled up across the full workload grid — per
    workload × latency the candidate and applied counts, acceptance
    rate, gain distribution and rejection-reason histogram. *)
val spd_decisions_tables : Engine.Session.t -> Table.t list

(** Translation-validation rollup: verdict tallies per paper grid cell
    (every built-in workload × 2- and 6-cycle memory).  Deterministic —
    no wall-clock columns. *)
val spd_validate_tables : Engine.Session.t -> Table.t list

(** Engine per-stage wall clock and session counters.  Seconds are
    run-dependent; the counter table is deterministic. *)
val timings_tables : Engine.Session.t -> Table.t list

(** {1 Pretty renderers} — thin wrappers over the table data above. *)

val table6_1 : Engine.Session.t -> Format.formatter -> unit -> unit
val table6_2 : Engine.Session.t -> Format.formatter -> unit -> unit
val table6_3 : Engine.Session.t -> Format.formatter -> unit -> unit
val table6_4 : Engine.Session.t -> Format.formatter -> unit -> unit
val fig6_2 : Engine.Session.t -> Format.formatter -> unit -> unit
val fig6_3 : Engine.Session.t -> Format.formatter -> unit -> unit
val fig6_4 : Engine.Session.t -> Format.formatter -> unit -> unit
val spd_dynamics : Engine.Session.t -> Format.formatter -> unit -> unit
val timings : Engine.Session.t -> Format.formatter -> unit -> unit

(** Failure appendix: every cell the session failed to compute, with
    the original exception.  Prints nothing when all cells succeeded —
    appended to artefact output by the CLIs, which also turn a
    non-empty appendix into a nonzero exit status. *)
val failure_appendix : Engine.Session.t -> Format.formatter -> unit -> unit

val all : Engine.Session.t -> Format.formatter -> unit -> unit
