(** Hot-path throughput microbenchmarks ([spd bench micro]).

    Per workload: compile, schedule and simulate throughput plus the
    end-to-end wall clock of a full pipeline run, each stage repeated
    until a minimum wall-clock budget has accumulated.  Results render
    through the shared {!Table} data (so [spd bench diff] tracks them
    — [micro*] tables are higher-better, the [cycles.micro]
    determinism anchor lower-better) and serialize as one
    [spd-micro/1] document for [spd bench snapshot]. *)

(** Schema identifier of the JSON document: ["spd-micro/1"]. *)
val schema : string

type stage_sample = {
  units : string;  (** what [units_per_iter] counts: ops, nodes, ... *)
  units_per_iter : int;
  iters : int;
  secs : float;  (** total wall clock over [iters] iterations *)
  per_sec : float;  (** [iters * units_per_iter / secs] *)
}

type sample = {
  workload : string;
  compile : stage_sample;
  schedule : stage_sample;
  simulate : stage_sample;
  e2e : stage_sample;
  cycles : int;  (** simulated cycles of the SPEC program *)
  traversals : int;  (** tree traversals of one simulated run *)
}

type t = {
  mem_latency : int;
  width : int;
  min_time : float;
  samples : sample list;
}

(** Benchmark one workload (SPEC pipeline; defaults: 5 FUs, 2-cycle
    memory, 0.3s per stage). *)
val run_workload :
  ?mem_latency:int ->
  ?width:int ->
  ?min_time:float ->
  Spd_workloads.Workload.t -> sample

(** Benchmark [workloads] by name (default: the paper's Table 6-2 set
    plus the extras, e.g. [matmul300]). *)
val run :
  ?mem_latency:int ->
  ?width:int ->
  ?min_time:float ->
  ?workloads:string list -> unit -> t

val to_tables : t -> Table.t list
val to_json : t -> Spd_telemetry.Json.t
val render : Artefact.format -> Format.formatter -> t -> unit

(** Simulate-stage throughput of [workload] in a parsed [spd-micro/1]
    document; [None] when the document does not carry it.  Used by
    [make perf-smoke] to compare a fresh run against the committed
    baseline snapshot. *)
val simulate_per_sec : Spd_telemetry.Json.t -> workload:string -> float option
