(** Bench-report regression tracking ([spd bench diff]).

    Compares two [spd-report/1] (or [spd-micro/1]) documents (e.g.
    {e BENCH_REPORT.json} and a snapshot from {e bench/history/}) cell
    by cell, using each table's id to decide what a worsening means:

    - {b lower is better}: [cycles*] (raw cycle counts) and [fig6_4*]
      (code growth);
    - {b higher is better}: [fig6_2*], [fig6_3*] (speedups), [micro*]
      (throughput) and the [ext_*] extension experiments;
    - {b informational}: everything else ([table6_*], [spd_dynamics*],
      …) — changes are reported but never count as regressions;
    - {b skipped}: [timings*] — wall clock is run-dependent by nature.

    A cell {e regresses} when it moves in the bad direction by more than
    the threshold (percent, default 0 — any worsening counts), when a
    tracked value disappears, or when a number turns into [n/a] (the
    cell failed).  An [n/a] turning into a number is an improvement.
    The CLI exits 2 when any cell regresses. *)

module Json = Spd_telemetry.Json

let schema = "spd-bench-diff/1"

type polarity = Lower_better | Higher_better | Informational | Skip

let polarity_of_table id =
  let has_prefix p = String.starts_with ~prefix:p id in
  if has_prefix "timings" then Skip
  else if has_prefix "cycles" || has_prefix "fig6_4" then Lower_better
  else if has_prefix "fig6_2" || has_prefix "fig6_3" || has_prefix "ext_"
          || has_prefix "micro"
  then Higher_better
  else Informational

let polarity_name = function
  | Lower_better -> "lower-better"
  | Higher_better -> "higher-better"
  | Informational -> "informational"
  | Skip -> "skip"

type change = {
  table : string;
  row : string;
  column : string;
  old_value : float option;  (** [None]: missing or non-numeric *)
  new_value : float option;
  polarity : polarity;
  regression : bool;
  improvement : bool;
}

type t = {
  threshold : float;  (** percent *)
  compared : int;  (** numeric cell pairs examined *)
  changes : change list;  (** cells that moved, document order *)
  regressions : int;
  improvements : int;
}

(* ------------------------------------------------------------------ *)
(* Report parsing: (table id, row label, column) -> cell value.
   [Some v] is a numeric cell, [None] an explicitly-present n/a cell
   (JSON null — a failed cell).  Text cells are not tracked. *)

type cells = (string * string * string, float option) Hashtbl.t

let parse_error what = Error (Printf.sprintf "malformed report: %s" what)

let table_cells (acc : cells) tbl =
  match
    ( Option.bind (Json.member "id" tbl) Json.to_string_opt,
      Option.bind (Json.member "columns" tbl) Json.to_list )
  with
  | Some id, Some columns ->
      let columns =
        List.map
          (fun c -> Option.value ~default:"" (Json.to_string_opt c))
          columns
      in
      let rows =
        Option.value ~default:[]
          (Option.bind (Json.member "rows" tbl) Json.to_list)
        @ Option.value ~default:[]
            (Option.bind (Json.member "footers" tbl) Json.to_list)
      in
      List.iter
        (fun row ->
          match
            ( Option.bind (Json.member "label" row) Json.to_string_opt,
              Option.bind (Json.member "cells" row) Json.to_list )
          with
          | Some label, Some cells ->
              List.iteri
                (fun i cell ->
                  match (List.nth_opt columns i, cell) with
                  | Some col, Json.Null ->
                      (* a failed (n/a) cell: present but valueless *)
                      Hashtbl.replace acc (id, label, col) None
                  | Some col, cell -> (
                      match Json.to_number cell with
                      | Some v -> Hashtbl.replace acc (id, label, col) (Some v)
                      | None -> ())
                  | None, _ -> ())
                cells
          | _ -> ())
        rows;
      Ok ()
  | _ -> parse_error "table without id/columns"

(** Flatten a parsed [spd-report/1] or [spd-micro/1] document into its
    tracked cells, remembering table order for deterministic diff
    output. *)
let report_cells (doc : Json.t) : (cells * string list, string) result =
  let acc : cells = Hashtbl.create 256 in
  let order = ref [] in
  let fold_tables rc tables =
    List.fold_left
      (fun rc tbl ->
        Result.bind rc (fun () ->
            (match Option.bind (Json.member "id" tbl) Json.to_string_opt with
            | Some id when not (List.mem id !order) -> order := id :: !order
            | _ -> ());
            table_cells acc tbl))
      rc tables
  in
  let finish = function
    | Ok () -> Ok (acc, List.rev !order)
    | Error e -> Error e
  in
  match Option.bind (Json.member "schema" doc) Json.to_string_opt with
  | Some s when s = Artefact.report_schema -> (
      match Option.bind (Json.member "artefacts" doc) Json.to_list with
      | None -> parse_error "no artefacts list"
      | Some artefacts ->
          finish
            (List.fold_left
               (fun rc artefact ->
                 Result.bind rc (fun () ->
                     fold_tables (Ok ())
                       (Option.value ~default:[]
                          (Option.bind
                             (Json.member "tables" artefact)
                             Json.to_list))))
               (Ok ()) artefacts))
  | Some "spd-micro/1" -> (
      (* microbenchmark documents carry their tables at top level *)
      match Option.bind (Json.member "tables" doc) Json.to_list with
      | None -> parse_error "no tables list"
      | Some tables -> finish (fold_tables (Ok ()) tables))
  | Some s ->
      parse_error
        (Printf.sprintf "expected schema %s or spd-micro/1, got %s"
           Artefact.report_schema s)
  | None -> parse_error "no schema field"

(* ------------------------------------------------------------------ *)
(* Diffing *)

let pct_change ~old_value ~new_value =
  if old_value = 0.0 then
    if new_value > 0.0 then infinity
    else if new_value < 0.0 then neg_infinity
    else 0.0
  else (new_value -. old_value) /. Float.abs old_value *. 100.0

(** Compare two parsed reports.  [threshold] is in percent. *)
let diff ?(threshold = 0.0) (old_doc : Json.t) (new_doc : Json.t) :
    (t, string) result =
  Result.bind (report_cells old_doc) (fun (old_cells, old_order) ->
      Result.bind (report_cells new_doc) (fun (new_cells, _) ->
          let compared = ref 0 in
          let changes = ref [] in
          let keys =
            Hashtbl.fold (fun k _ acc -> k :: acc) old_cells []
            |> List.sort (fun (t1, r1, c1) (t2, r2, c2) ->
                   let oi id =
                     let rec idx i = function
                       | [] -> max_int
                       | x :: tl -> if x = id then i else idx (i + 1) tl
                     in
                     idx 0 old_order
                   in
                   compare (oi t1, t1, r1, c1) (oi t2, t2, r2, c2))
          in
          List.iter
            (fun ((table, row, column) as key) ->
              let polarity = polarity_of_table table in
              if polarity <> Skip then begin
                let tracked =
                  match polarity with
                  | Lower_better | Higher_better -> true
                  | Informational | Skip -> false
                in
                let old_value = Hashtbl.find old_cells key in
                let new_value =
                  (* [None]: the key vanished; [Some None]: an explicit
                     n/a cell — both mean the value is gone *)
                  Option.join (Hashtbl.find_opt new_cells key)
                in
                match (old_value, new_value) with
                | Some old_value, Some new_value ->
                    incr compared;
                    if new_value <> old_value then begin
                      let pct = pct_change ~old_value ~new_value in
                      let beyond = Float.abs pct > threshold in
                      let regression, improvement =
                        match polarity with
                        | Lower_better ->
                            (pct > threshold, beyond && pct < 0.0)
                        | Higher_better ->
                            (pct < -.threshold, beyond && pct > 0.0)
                        | Informational | Skip -> (false, false)
                      in
                      changes :=
                        {
                          table;
                          row;
                          column;
                          old_value = Some old_value;
                          new_value = Some new_value;
                          polarity;
                          regression;
                          improvement;
                        }
                        :: !changes
                    end
                | Some old_value, None ->
                    (* a tracked value disappeared or failed (n/a):
                       regression in polarity tables, informational
                       otherwise *)
                    changes :=
                      {
                        table;
                        row;
                        column;
                        old_value = Some old_value;
                        new_value = None;
                        polarity;
                        regression = tracked;
                        improvement = false;
                      }
                      :: !changes
                | None, Some new_value ->
                    (* an n/a cell now carries a number: the cell was
                       fixed — an improvement in polarity tables *)
                    changes :=
                      {
                        table;
                        row;
                        column;
                        old_value = None;
                        new_value = Some new_value;
                        polarity;
                        regression = false;
                        improvement = tracked;
                      }
                      :: !changes
                | None, None -> () (* n/a on both sides: no movement *)
              end)
            keys;
          let changes = List.rev !changes in
          Ok
            {
              threshold;
              compared = !compared;
              changes;
              regressions =
                List.length (List.filter (fun c -> c.regression) changes);
              improvements =
                List.length (List.filter (fun c -> c.improvement) changes);
            }))

let diff_strings ?threshold ~old_report ~new_report () : (t, string) result =
  Result.bind
    (Result.map_error
       (fun e -> "old report: " ^ e)
       (Json.of_string old_report))
    (fun old_doc ->
      Result.bind
        (Result.map_error
           (fun e -> "new report: " ^ e)
           (Json.of_string new_report))
        (fun new_doc -> diff ?threshold old_doc new_doc))

(* ------------------------------------------------------------------ *)
(* Rendering *)

let opt_cell = function Some v -> Table.Num v | None -> Table.Na

let to_table (t : t) : Table.t =
  let rows =
    List.map
      (fun c ->
        Table.row
          (Printf.sprintf "%s/%s/%s" c.table c.row c.column)
          [
            opt_cell c.old_value;
            opt_cell c.new_value;
            (match (c.old_value, c.new_value) with
            | Some o, Some n -> Table.Pct (pct_change ~old_value:o ~new_value:n /. 100.0)
            | _ -> Table.Na);
            Table.Text (polarity_name c.polarity);
            Table.Text
              (if c.regression then "REGRESSION"
               else if c.improvement then "improved"
               else "");
          ])
      t.changes
  in
  let footers =
    [
      Table.row "compared" [ Table.Int t.compared; Table.Na; Table.Na; Table.Na; Table.Na ];
      Table.row "regressions"
        [ Table.Int t.regressions; Table.Na; Table.Na; Table.Na; Table.Na ];
      Table.row "improvements"
        [ Table.Int t.improvements; Table.Na; Table.Na; Table.Na; Table.Na ];
    ]
  in
  Table.v ~id:"bench_diff"
    ~title:
      (Printf.sprintf "Bench report diff (threshold %.3g%%)" t.threshold)
    ~notes:
      (if t.changes = [] then [ "no cell moved" ]
       else
         [
           "only cells that moved are listed; polarity decides whether \
            a move counts as a regression";
         ])
    ~label_header:"table/row/column"
    ~columns:[ "old"; "new"; "change"; "polarity"; "verdict" ]
    ~footers rows

let change_json (c : change) =
  let num = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [
      ("table", Json.String c.table);
      ("row", Json.String c.row);
      ("column", Json.String c.column);
      ("old", num c.old_value);
      ("new", num c.new_value);
      ( "change_pct",
        match (c.old_value, c.new_value) with
        | Some o, Some n -> Json.Float (pct_change ~old_value:o ~new_value:n)
        | _ -> Json.Null );
      ("polarity", Json.String (polarity_name c.polarity));
      ("regression", Json.Bool c.regression);
      ("improvement", Json.Bool c.improvement);
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("threshold_pct", Json.Float t.threshold);
      ("compared", Json.Int t.compared);
      ("regressions", Json.Int t.regressions);
      ("improvements", Json.Int t.improvements);
      ("changes", Json.List (List.map change_json t.changes));
    ]

let render (format : Artefact.format) ppf (t : t) =
  match format with
  | Artefact.Pretty -> Table.pp ppf (to_table t)
  | Artefact.Json -> Fmt.pf ppf "%s@." (Json.to_string (to_json t))
  | Artefact.Csv ->
      Fmt.pf ppf "%s@." Table.csv_header;
      List.iter (Fmt.pf ppf "%s@.") (Table.to_csv_lines (to_table t))
