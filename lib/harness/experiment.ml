(** Experiment driver: a thin, deprecated façade over
    {!Engine.Session}.  The process-wide default session is gone;
    every entry point takes the session explicitly (see the .mli). *)

let with_session s f =
  Fun.protect ~finally:(fun () -> Engine.Session.close s) (fun () -> f s)

let submit = Engine.Session.submit
let lowered = Engine.Session.lowered
let prepared = Engine.Session.prepared
let cycles = Engine.Session.cycles
let speedup_over_naive = Engine.Session.speedup_over_naive
let spec_over_static = Engine.Session.spec_over_static
let spd_counts = Engine.Session.spd_counts
let code_growth = Engine.Session.code_growth
let spd_dynamics = Engine.Session.spd_dynamics
let spd_decisions = Engine.Session.spd_decisions
let failures = Engine.Session.failures
