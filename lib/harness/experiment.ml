(** Experiment driver: the sealed, session-backed façade the table and
    figure generators share.

    All mutable state (memo tables, the domain pool, the on-disk
    cache) lives inside an {!Engine.Session}; this module merely
    maintains the process-wide default session and re-exports its
    accessors with the historical signatures. *)

let mu = Mutex.create ()
let current : Engine.Session.t option ref = ref None

let default_session () =
  Mutex.lock mu;
  let s =
    match !current with
    | Some s -> s
    | None ->
        let s = Engine.Session.create () in
        current := Some s;
        s
  in
  Mutex.unlock mu;
  s

let set_default_session s =
  Mutex.lock mu;
  current := Some s;
  Mutex.unlock mu

let lowered bench = Engine.Session.lowered (default_session ()) bench

(** Prepared pipeline for a benchmark at a memory latency (memoized). *)
let prepared ~bench ~latency kind =
  Engine.Session.prepared (default_session ()) ~bench ~latency kind

(** Measured cycle count (memoized). *)
let cycles ~bench ~latency kind ~width =
  Engine.Session.cycles (default_session ()) ~bench ~latency kind ~width

(** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
let speedup_over_naive ~bench ~latency kind ~width =
  Engine.Session.speedup_over_naive (default_session ()) ~bench ~latency
    kind ~width

(** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
let spec_over_static ~bench ~latency ~width =
  Engine.Session.spec_over_static (default_session ()) ~bench ~latency
    ~width

(** SpD application counts by dependence kind (Table 6-3 row). *)
let spd_counts ~bench ~latency =
  Engine.Session.spd_counts (default_session ()) ~bench ~latency

(** Code growth of SPEC relative to STATIC, as a fraction (Figure 6-4). *)
let code_growth ~bench ~latency =
  Engine.Session.code_growth (default_session ()) ~bench ~latency

(** Run-time dynamics of the SPEC pipeline's SpD applications. *)
let spd_dynamics ~bench ~latency =
  Engine.Session.spd_dynamics (default_session ()) ~bench ~latency

(* Failure-contained variants: a broken cell comes back as [Failed]
   instead of raising, so renderers can print [n/a] and move on. *)

let cycles_result ~bench ~latency kind ~width =
  Engine.Session.cycles_outcome (default_session ()) ~bench ~latency kind
    ~width

let speedup_over_naive_result ~bench ~latency kind ~width =
  Engine.Session.speedup_over_naive_outcome (default_session ()) ~bench
    ~latency kind ~width

let spec_over_static_result ~bench ~latency ~width =
  Engine.Session.spec_over_static_outcome (default_session ()) ~bench
    ~latency ~width

let spd_counts_result ~bench ~latency =
  Engine.Session.spd_counts_outcome (default_session ()) ~bench ~latency

let code_size_result ~bench ~latency kind =
  Engine.Session.code_size_outcome (default_session ()) ~bench ~latency kind

let code_growth_result ~bench ~latency =
  Engine.Session.code_growth_outcome (default_session ()) ~bench ~latency

let spd_dynamics_result ~bench ~latency =
  Engine.Session.spd_dynamics_outcome (default_session ()) ~bench ~latency

(** Every failure the default session has recorded, sorted by cell key. *)
let failures () = Engine.Session.failures (default_session ())
