(** Deterministic fault injection for the experiment engine.

    A {!t} is a set of armed faults with private hit counters; the
    engine consults it at well-defined points (cell computation start,
    on-disk cache reads, simulator fuel).  Faults are deterministic —
    the [n]-th cache read is corrupted, a cell key either matches or it
    does not — so tests and the CLI can reproduce a failure exactly.

    The spec grammar accepted by {!parse} is a comma-separated list of

    {v
    cache-corrupt:<n>         corrupt the n-th on-disk cache read (1-based)
    cell-raise:<key>[@<n>]    raise from matching cells ([n] first hits
                              only; default every hit)
    fuel:<n>                  cap every simulation at n tree traversals
    cycles-inflate:<pct>      inflate every reported cycle count by pct%
                              (an injected slowdown for regression-tracker
                              tests; never written to the cache)
    conn-torn-frame:<n>       chaos clients: send n frames truncated
                              mid-body, then disconnect
    conn-garbage-header:<n>   chaos clients: send n unframeable header
                              sections
    conn-stall:<n>            chaos clients: open n connections that go
                              silent mid-frame (slow-loris)
    worker-raise:<n>          daemon: raise from the first n accepted
                              connections, exercising worker supervision
    checker-raise:<n>         raise from the first n per-application
                              transform-checker invocations, exercising
                              per-cell containment of a raising checker
    v}

    [<key>] selects cells by prefix of the engine's cell key,
    [bench/latency/KIND/...] — e.g. [adi/2/SPEC] hits the preparation,
    the summary and every cycle measurement of that grid cell.  The
    [conn-*] counts are budgets read by the chaos harness's clients
    rather than hooks the engine consults; [worker-raise] is consulted
    by the serve daemon's workers; [checker-raise] by the pipeline's
    composed {!Spd_core.Heuristic.checker}. *)

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected what -> Some (Printf.sprintf "Fault injected: %s" what)
    | _ -> None)

type t = {
  cache_corrupt : int option;  (** which cache read to corrupt, 1-based *)
  cell : (string * int) option;  (** key prefix, number of hits armed *)
  fuel : int option;  (** simulator fuel override *)
  inflate : float option;  (** cycle-count inflation, in percent *)
  conn_torn : int option;  (** chaos budget: torn frames to send *)
  conn_garbage : int option;  (** chaos budget: garbage headers to send *)
  conn_stall : int option;  (** chaos budget: stalled connections *)
  worker : int option;  (** connections whose worker should raise *)
  checker : int option;  (** checker invocations that should raise *)
  reads : int Atomic.t;  (** on-disk cache reads observed so far *)
  raises : int Atomic.t;  (** cell-raise faults fired so far *)
  worker_hits : int Atomic.t;  (** worker-raise faults fired so far *)
  checker_hits : int Atomic.t;  (** checker-raise faults fired so far *)
}

let none =
  { cache_corrupt = None; cell = None; fuel = None; inflate = None;
    conn_torn = None; conn_garbage = None; conn_stall = None; worker = None;
    checker = None; reads = Atomic.make 0; raises = Atomic.make 0;
    worker_hits = Atomic.make 0; checker_hits = Atomic.make 0 }

let is_none t =
  t.cache_corrupt = None && t.cell = None && t.fuel = None
  && t.inflate = None && t.conn_torn = None && t.conn_garbage = None
  && t.conn_stall = None && t.worker = None && t.checker = None

let fuel t = t.fuel

(** Apply the armed cycle inflation to a measured cycle count.  The
    result is what the engine reports upwards; the truthful value is
    what goes to (and comes from) the on-disk cache, so an armed
    inflation acts as a pure, deterministic slowdown of the current run
    only. *)
let inflate_cycles t cycles =
  match t.inflate with
  | None -> cycles
  | Some pct ->
      (* fractional cycles round up; the epsilon keeps an exact product
         like 100 * 1.1 from ceiling into the next integer *)
      int_of_float
        (ceil ((float_of_int cycles *. (1.0 +. (pct /. 100.0))) -. 1e-9))

let corrupt_cache_read t =
  match t.cache_corrupt with
  | None -> false
  | Some n -> Atomic.fetch_and_add t.reads 1 + 1 = n

let cell_raise t ~key =
  match t.cell with
  | Some (prefix, times) when String.starts_with ~prefix key ->
      (* race-tolerant: concurrent matching cells may each take a slot,
         which only ever under-fires, never over-fires *)
      if Atomic.fetch_and_add t.raises 1 < times then
        raise (Injected (Printf.sprintf "cell-raise:%s" key))
  | _ -> ()

let conn_torn_frames t = Option.value ~default:0 t.conn_torn
let conn_garbage_headers t = Option.value ~default:0 t.conn_garbage
let conn_stalls t = Option.value ~default:0 t.conn_stall

let worker_raise t =
  match t.worker with
  | None -> ()
  | Some times ->
      if Atomic.fetch_and_add t.worker_hits 1 < times then
        raise (Injected "worker-raise")

let checker_raise t =
  match t.checker with
  | None -> ()
  | Some times ->
      if Atomic.fetch_and_add t.checker_hits 1 < times then
        raise (Injected "checker-raise")

(* ------------------------------------------------------------------ *)

let parse_int what s =
  match int_of_string_opt s with
  | Some n when n > 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s wants a positive integer, got %S" what s)

let parse_one acc spec =
  match String.index_opt spec ':' with
  | None ->
      Error
        (Printf.sprintf
           "malformed fault %S (expected cache-corrupt:<n>, \
            cell-raise:<key>[@<n>] or fuel:<n>)"
           spec)
  | Some i -> (
      let name = String.sub spec 0 i in
      let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
      match name with
      | "cache-corrupt" ->
          Result.map
            (fun n -> { acc with cache_corrupt = Some n })
            (parse_int "cache-corrupt" arg)
      | "cell-raise" -> (
          if arg = "" then Error "cell-raise wants a cell key"
          else
            match String.index_opt arg '@' with
            | None -> Ok { acc with cell = Some (arg, max_int) }
            | Some j ->
                let key = String.sub arg 0 j in
                let times =
                  String.sub arg (j + 1) (String.length arg - j - 1)
                in
                Result.map
                  (fun n -> { acc with cell = Some (key, n) })
                  (parse_int "cell-raise count" times))
      | "fuel" ->
          Result.map (fun n -> { acc with fuel = Some n }) (parse_int "fuel" arg)
      | "cycles-inflate" -> (
          match float_of_string_opt arg with
          | Some pct when pct > 0.0 -> Ok { acc with inflate = Some pct }
          | _ ->
              Error
                (Printf.sprintf
                   "cycles-inflate wants a positive percentage, got %S" arg))
      | "conn-torn-frame" ->
          Result.map
            (fun n -> { acc with conn_torn = Some n })
            (parse_int "conn-torn-frame" arg)
      | "conn-garbage-header" ->
          Result.map
            (fun n -> { acc with conn_garbage = Some n })
            (parse_int "conn-garbage-header" arg)
      | "conn-stall" ->
          Result.map
            (fun n -> { acc with conn_stall = Some n })
            (parse_int "conn-stall" arg)
      | "worker-raise" ->
          Result.map
            (fun n -> { acc with worker = Some n })
            (parse_int "worker-raise" arg)
      | "checker-raise" ->
          Result.map
            (fun n -> { acc with checker = Some n })
            (parse_int "checker-raise" arg)
      | _ -> Error (Printf.sprintf "unknown fault %S" name))

let parse s =
  String.split_on_char ',' s
  |> List.filter (fun part -> String.trim part <> "")
  |> List.fold_left
       (fun acc part ->
         Result.bind acc (fun t -> parse_one t (String.trim part)))
       (Ok
          { none with reads = Atomic.make 0; raises = Atomic.make 0;
            worker_hits = Atomic.make 0; checker_hits = Atomic.make 0 })

let pp ppf t =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Printf.sprintf "cache-corrupt:%d") t.cache_corrupt;
        Option.map
          (fun (k, n) ->
            if n = max_int then Printf.sprintf "cell-raise:%s" k
            else Printf.sprintf "cell-raise:%s@%d" k n)
          t.cell;
        Option.map (Printf.sprintf "fuel:%d") t.fuel;
        Option.map (Printf.sprintf "cycles-inflate:%g") t.inflate;
        Option.map (Printf.sprintf "conn-torn-frame:%d") t.conn_torn;
        Option.map (Printf.sprintf "conn-garbage-header:%d") t.conn_garbage;
        Option.map (Printf.sprintf "conn-stall:%d") t.conn_stall;
        Option.map (Printf.sprintf "worker-raise:%d") t.worker;
        Option.map (Printf.sprintf "checker-raise:%d") t.checker;
      ]
  in
  Fmt.string ppf
    (match parts with [] -> "none" | ps -> String.concat "," ps)
