(** Decision-ledger introspection ([spd why]).

    For one workload at one memory latency, reads the guidance
    heuristic's decision ledger through the engine's single request
    path ({!Engine.Query.Spd_decisions}) and renders it as data: per
    tree, every candidate ambiguous arc with its [Gain()] numbers, the
    static-disambiguation provenance that left the arc ambiguous, the
    budgets in force and the verdict; plus a program-wide summary with
    the rejection-reason histogram.

    The same document backs the [spd why] CLI, the daemon's [why]
    method and the [spd report spd-decisions] rollup, so the three
    surfaces cannot drift apart: they all read the same memoized cell
    and serialize it with the same code. *)

module Json = Spd_telemetry.Json
module H = Spd_core.Heuristic
module Memdep = Spd_ir.Memdep
module W = Spd_workloads

let schema = "spd-decisions/1"

type t = {
  workload : string;
  mem_latency : int;
  decisions : H.decision list;  (** the full ledger, in ledger order *)
}

(** Fetch the SPEC pipeline's decision ledger for [workload].  Raises
    [Invalid_argument] for an unknown workload name and
    {!Engine.Cell_failed} when the cell failed. *)
let analyze ?(mem_latency = 2) session workload : t =
  ignore (W.Registry.by_name workload);
  let decisions =
    Engine.Session.spd_decisions session ~bench:workload ~latency:mem_latency
  in
  { workload; mem_latency; decisions }

let selected ?fn ?tree (t : t) : H.decision list =
  List.filter
    (fun (d : H.decision) ->
      (match fn with Some f -> f = d.H.func | None -> true)
      && match tree with Some id -> id = d.H.tree_id | None -> true)
    t.decisions

(** Ledger entries grouped per (function, tree id), both group order
    and entries within a group preserving ledger order. *)
let groups (ds : H.decision list) : ((string * int) * H.decision list) list =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : H.decision) ->
      let k = (d.H.func, d.H.tree_id) in
      (match Hashtbl.find_opt tbl k with
      | None ->
          order := k :: !order;
          Hashtbl.add tbl k (ref [ d ])
      | Some r -> r := d :: !r))
    ds;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order

let kind_name = function
  | Memdep.Raw -> "raw"
  | Memdep.War -> "war"
  | Memdep.Waw -> "waw"

(* ------------------------------------------------------------------ *)
(* JSON *)

let decision_json (d : H.decision) : Json.t =
  Json.Obj
    [
      ("src", Json.Int (fst d.H.arc));
      ("dst", Json.Int (snd d.H.arc));
      ("kind", Json.String (kind_name d.H.kind));
      ( "ambiguity",
        match d.H.ambiguity with
        | Some a -> Json.String (Memdep.ambiguity_name a)
        | None -> Json.Null );
      ("before", Json.Float d.H.before);
      ("after", Json.Float d.H.after);
      ("gain", Json.Float d.H.gain);
      ("min_gain", Json.Float d.H.min_gain);
      ("tree_size", Json.Int d.H.tree_size);
      ("max_size", Json.Int d.H.max_size);
      ( "profile",
        Json.String (if d.H.profiled then "profiled" else "uniform") );
      ("verdict", Json.String (H.verdict_name d.H.verdict));
    ]

let histogram_json ds =
  Json.Obj
    (List.map (fun (k, n) -> (k, Json.Int n)) (H.rejection_histogram ds))

(** The per-workload [spd-decisions/1] document: aggregate counts and
    the rejection histogram at the top, then the ledger grouped per
    tree.  Filters narrow both forms consistently. *)
let to_json ?fn ?tree (t : t) : Json.t =
  let ds = selected ?fn ?tree t in
  let applied = List.length (H.applied_decisions ds) in
  let total = List.length ds in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("workload", Json.String t.workload);
      ("mem_latency", Json.Int t.mem_latency);
      ("candidates", Json.Int total);
      ("applied", Json.Int applied);
      ("rejected", Json.Int (total - applied));
      ("rejections", histogram_json ds);
      ( "trees",
        Json.List
          (List.map
             (fun ((func, tree_id), ds) ->
               Json.Obj
                 [
                   ("func", Json.String func);
                   ("tree", Json.Int tree_id);
                   ("candidates", Json.Int (List.length ds));
                   ("decisions", Json.List (List.map decision_json ds));
                 ])
             (groups ds)) );
    ]

(* ------------------------------------------------------------------ *)
(* Tables *)

let verdict_cell (d : H.decision) = Table.Text (H.verdict_name d.H.verdict)

let decisions_table (t : t) (((func, tree_id), ds) : _ * H.decision list) :
    Table.t =
  Table.v
    ~id:(Printf.sprintf "why.decisions.%s.%d" func tree_id)
    ~title:
      (Printf.sprintf "SpD decisions %s tree %d (%d-cycle memory)" func
         tree_id t.mem_latency)
    ~notes:
      [
        "one row per candidate ambiguous arc the heuristic judged;";
        "before/after: expected traversal time with/without the arc;";
        "ambiguity: which static test left the arc ambiguous";
      ]
    ~label_header:"arc"
    ~columns:
      [
        "kind"; "ambiguity"; "before"; "after"; "gain"; "min gain";
        "size"; "max"; "verdict";
      ]
    (List.map
       (fun (d : H.decision) ->
         Table.row
           (Printf.sprintf "#%d->#%d" (fst d.H.arc) (snd d.H.arc))
           [
             Table.Text (kind_name d.H.kind);
             (match d.H.ambiguity with
             | Some a -> Table.Text (Memdep.ambiguity_name a)
             | None -> Table.Na);
             Table.Num d.H.before;
             Table.Num d.H.after;
             Table.Num d.H.gain;
             Table.Num d.H.min_gain;
             Table.Int d.H.tree_size;
             Table.Int d.H.max_size;
             verdict_cell d;
           ])
       ds)

let summary_table (t : t) (ds : H.decision list) : Table.t =
  let total = List.length ds in
  let applied = List.length (H.applied_decisions ds) in
  let rate =
    if total = 0 then Table.Na
    else Table.Pct (float_of_int applied /. float_of_int total)
  in
  Table.v
    ~id:(Printf.sprintf "why.summary.%s" t.workload)
    ~title:
      (Printf.sprintf "SpD decision summary %s (%d-cycle memory)" t.workload
         t.mem_latency)
    ~label_header:"measure" ~columns:[ "count" ]
    ~footers:[ Table.row "acceptance rate" [ rate ] ]
    (Table.row "candidates" [ Table.Int total ]
    :: Table.row "applied" [ Table.Int applied ]
    :: List.map
         (fun (reason, n) -> Table.row reason [ Table.Int n ])
         (H.rejection_histogram ds))

(** Every table of a why run: per selected tree the decision table,
    then the program-wide summary (over the same selection). *)
let tables ?fn ?tree (t : t) : Table.t list =
  let ds = selected ?fn ?tree t in
  List.map (decisions_table t) (groups ds) @ [ summary_table t ds ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render ?fn ?tree (format : Artefact.format) ppf (t : t) =
  match format with
  | Artefact.Pretty -> List.iter (Table.pp ppf) (tables ?fn ?tree t)
  | Artefact.Json -> Fmt.pf ppf "%s@." (Json.to_string (to_json ?fn ?tree t))
  | Artefact.Csv ->
      Fmt.pf ppf "%s@." Table.csv_header;
      List.iter
        (fun tbl -> List.iter (Fmt.pf ppf "%s@.") (Table.to_csv_lines tbl))
        (tables ?fn ?tree t)
