(** Schedule introspection and cycle attribution ([spd explain]).

    For one workload, prepares the STATIC and SPEC pipelines, schedules
    every SPEC tree on the requested machine, simulates with a profile,
    and renders three kinds of artefact through the shared {!Table}
    machinery:

    - per tree, the cycle-by-FU {b occupancy grid}, with guarded SpD
      operations annotated by their alias-predicate version
      ([a<reg>] alias version, [n<reg>] no-alias version);
    - per tree, the {b critical-path attribution}: the makespan
      partitioned into ambiguous-memory / dataflow / resource / branch
      intervals ({!Spd_machine.Critpath});
    - one program-wide {b region table}: per (function, tree), the
      simulated traversals and cycles — summing {e exactly} to the
      simulator's reported total — alongside the STATIC vs SPEC
      schedule spans (the paper's per-region critical-path delta).

    All values are computed once and rendered as data, so the pretty,
    JSON ([spd-explain/1]) and CSV outputs cannot drift apart. *)

module Descr = Spd_machine.Descr
module Schedule = Spd_machine.Schedule
module Critpath = Spd_machine.Critpath
module Json = Spd_telemetry.Json
module W = Spd_workloads

let schema = "spd-explain/1"

(** One scheduled-and-analyzed SPEC tree. *)
type tree_view = {
  func : string;
  tree : Spd_ir.Tree.t;
  schedule : Schedule.t;
  critpath : Critpath.t;
  static_span : int option;
      (** span of the same tree under STATIC, when the tree survived
          disambiguation with the same id (it always does: SpD rewrites
          trees in place) *)
  static_ambig : int option;
      (** makespan cycles the STATIC schedule attributes to ambiguous
          arcs — the cost SpD attacks; the SPEC tree no longer carries
          the transformed arcs *)
  traversals : int;
  cycles : int;  (** simulated cycles attributed to this tree *)
}

type t = {
  workload : string;
  width : int;
  mem_latency : int;
  total_cycles : int;  (** the simulator's reported cycle count *)
  total_traversals : int;
  applications : Spd_core.Heuristic.application list;
  trees : tree_view list;  (** every tree of the program, in order *)
}

(* ------------------------------------------------------------------ *)
(* Analysis *)

let trees_of prog =
  let acc = ref [] in
  Spd_ir.Prog.iter_trees (fun func tree -> acc := (func, tree) :: !acc) prog;
  List.rev !acc

(** Analyze [workload] on a [width]-unit machine.  Raises
    [Invalid_argument] for an unknown workload name. *)
let analyze ?(width = 5) ?(mem_latency = 2) workload : t =
  let w = W.Registry.by_name workload in
  let lowered = Spd_lang.Lower.compile w.W.Workload.source in
  let config = Pipeline.Config.v ~mem_latency () in
  let static = Pipeline.prepare ~config Pipeline.Static lowered in
  let spec = Pipeline.prepare ~config Pipeline.Spec lowered in
  let descr = Descr.fus width ~mem_latency in
  let timing = Spd_machine.Timing_builder.program descr spec.Pipeline.prog in
  let profile = Spd_sim.Profile.create () in
  let result = Spd_sim.Interp.run ~timing ~profile spec.Pipeline.prog in
  let static_spans = Hashtbl.create 32 in
  List.iter
    (fun (func, tree) ->
      let s = Schedule.of_tree ~descr tree in
      let cp = Critpath.analyze s in
      Hashtbl.replace static_spans (func, tree.Spd_ir.Tree.id)
        ( s.Schedule.span,
          List.assoc Critpath.Ambiguous_mem cp.Critpath.by_category ))
    (trees_of static.Pipeline.prog);
  let trees =
    List.map
      (fun (func, (tree : Spd_ir.Tree.t)) ->
        let schedule = Schedule.of_tree ~descr tree in
        let critpath = Critpath.analyze schedule in
        let traversals, cycles =
          match Spd_sim.Profile.find profile ~func ~tree_id:tree.id with
          | Some stat ->
              (stat.Spd_sim.Profile.traversals, stat.Spd_sim.Profile.cycles)
          | None -> (0, 0)
        in
        let static_info = Hashtbl.find_opt static_spans (func, tree.id) in
        {
          func;
          tree;
          schedule;
          critpath;
          static_span = Option.map fst static_info;
          static_ambig = Option.map snd static_info;
          traversals;
          cycles;
        })
      (trees_of spec.Pipeline.prog)
  in
  {
    workload;
    width;
    mem_latency;
    total_cycles = result.Spd_sim.Interp.cycles;
    total_traversals = result.Spd_sim.Interp.traversals;
    applications = spec.Pipeline.applications;
    trees;
  }

let selected ?fn ?tree (t : t) : tree_view list =
  List.filter
    (fun v ->
      (match fn with Some f -> f = v.func | None -> true)
      && match tree with Some id -> id = v.tree.Spd_ir.Tree.id | None -> true)
    t.trees

(* ------------------------------------------------------------------ *)
(* Version annotation of SpD-guarded operations *)

(** Per insn id, the version marker to append in the grid: [a<reg>] for
    alias-version ops, [n<reg>] for no-alias-guarded originals, where
    [<reg>] is the application's alias-predicate register. *)
let version_markers (apps : Spd_core.Heuristic.application list) ~func
    ~tree_id : (int, string) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Spd_core.Heuristic.application) ->
      if a.func = func && a.tree_id = tree_id then begin
        List.iter
          (fun id -> Hashtbl.replace tbl id (Printf.sprintf "a%d" a.predicate))
          a.alias_insns;
        List.iter
          (fun id -> Hashtbl.replace tbl id (Printf.sprintf "n%d" a.predicate))
          a.noalias_insns
      end)
    apps;
  tbl

(* ------------------------------------------------------------------ *)
(* Tables *)

let grid_table (t : t) (v : tree_view) : Table.t =
  let markers =
    version_markers t.applications ~func:v.func ~tree_id:v.tree.Spd_ir.Tree.id
  in
  let s = v.schedule in
  let cell node =
    let label = Schedule.node_label s node in
    match Schedule.insn_id s node with
    | Some id -> (
        match Hashtbl.find_opt markers id with
        | Some m -> Table.Text (label ^ " [" ^ m ^ "]")
        | None -> Table.Text label)
    | None -> Table.Text label
  in
  let grid = Schedule.occupancy s in
  let rows =
    Array.to_list
      (Array.mapi
         (fun cycle slots ->
           Table.row (string_of_int cycle)
             (Array.to_list
                (Array.map
                   (function Some node -> cell node | None -> Table.Text "·")
                   slots)))
         grid)
  in
  Table.v
    ~id:
      (Printf.sprintf "explain.grid.%s.%d" v.func v.tree.Spd_ir.Tree.id)
    ~title:
      (Printf.sprintf "Occupancy %s tree %d (%d FU, %d-cycle memory)"
         v.func v.tree.Spd_ir.Tree.id t.width t.mem_latency)
    ~notes:
      [
        Printf.sprintf "schedule length %d, makespan %d, %d ops"
          s.Schedule.length s.Schedule.span
          (Array.length s.Schedule.ops);
        "[aR]/[nR] mark SpD alias / no-alias versions guarded by \
         predicate register R";
      ]
    ~label_header:"cycle"
    ~columns:(List.init (Schedule.n_fus s) (fun i -> Printf.sprintf "fu%d" i))
    rows

let critpath_table (v : tree_view) : Table.t =
  let s = v.schedule in
  let cp = v.critpath in
  let rows =
    (* entry-first reads like the program: earliest interval first *)
    List.sort (fun (a : Critpath.step) b -> compare a.lo b.lo) cp.steps
    |> List.map (fun (st : Critpath.step) ->
           Table.row
             (Schedule.node_label s st.node)
             [
               Table.Int st.lo;
               Table.Int st.hi;
               Table.Int (st.hi - st.lo);
               Table.Text (Critpath.category_name st.category);
             ])
  in
  let footers =
    List.map
      (fun (c, n) ->
        Table.row
          ("total " ^ Critpath.category_name c)
          [ Table.Na; Table.Na; Table.Int n; Table.Na ])
      cp.by_category
    @ [
        Table.row "TOTAL (makespan)"
          [ Table.Int 0; Table.Int cp.span; Table.Int cp.span; Table.Na ];
      ]
  in
  Table.v
    ~id:
      (Printf.sprintf "explain.critpath.%s.%d" v.func v.tree.Spd_ir.Tree.id)
    ~title:
      (Printf.sprintf "Critical path %s tree %d" v.func v.tree.Spd_ir.Tree.id)
    ~notes:
      [
        "disjoint intervals tiling [0, makespan): per-category totals \
         sum exactly to the makespan";
      ]
    ~label_header:"op" ~columns:[ "from"; "to"; "cycles"; "category" ]
    ~footers rows

(** The program-wide per-region attribution.  The cycle column sums
    exactly to the simulator's reported total ([TOTAL] footer); the span
    columns give the before/after-SpD critical-path delta per region. *)
let regions_table (t : t) : Table.t =
  let rows =
    List.map
      (fun v ->
        let spec_span = v.schedule.Schedule.span in
        let delta =
          match v.static_span with
          | Some st -> Table.Int (st - spec_span)
          | None -> Table.Na
        in
        Table.row
          (Printf.sprintf "%s/%d" v.func v.tree.Spd_ir.Tree.id)
          [
            Table.Int v.traversals;
            Table.Int v.cycles;
            (match v.static_span with
            | Some st -> Table.Int st
            | None -> Table.Na);
            Table.Int spec_span;
            delta;
            (match v.static_ambig with
            | Some a -> Table.Int a
            | None -> Table.Na);
          ])
      t.trees
  in
  let footers =
    [
      Table.row "TOTAL"
        [
          Table.Int t.total_traversals;
          Table.Int t.total_cycles;
          Table.Na;
          Table.Na;
          Table.Na;
          Table.Na;
        ];
    ]
  in
  Table.v
    ~id:(Printf.sprintf "explain.regions.%s" t.workload)
    ~title:
      (Printf.sprintf
         "Per-region attribution %s (%d FU, %d-cycle memory)" t.workload
         t.width t.mem_latency)
    ~notes:
      [
        "cycles: simulated cycles charged to each region's traversals \
         (sums exactly to the simulator total);";
        "static/spec span: the tree's schedule makespan before/after \
         SpD; ambig: STATIC makespan cycles attributed to ambiguous \
         arcs (the cost SpD attacks)";
      ]
    ~label_header:"func/tree"
    ~columns:[ "traversals"; "cycles"; "static"; "spec"; "delta"; "ambig" ]
    ~footers rows

(** Every table of an explain run: per selected tree the occupancy grid
    and critical path, then the program-wide region attribution. *)
let tables ?fn ?tree (t : t) : Table.t list =
  List.concat_map
    (fun v -> [ grid_table t v; critpath_table v ])
    (selected ?fn ?tree t)
  @ [ regions_table t ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

let to_json ?fn ?tree (t : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("workload", Json.String t.workload);
      ("width", Json.Int t.width);
      ("mem_latency", Json.Int t.mem_latency);
      ("cycles", Json.Int t.total_cycles);
      ("traversals", Json.Int t.total_traversals);
      ("applications", Json.Int (List.length t.applications));
      ( "tables",
        Json.List (List.map Table.to_json (tables ?fn ?tree t)) );
    ]

let render ?fn ?tree (format : Artefact.format) ppf (t : t) =
  match format with
  | Artefact.Pretty -> List.iter (Table.pp ppf) (tables ?fn ?tree t)
  | Artefact.Json ->
      Fmt.pf ppf "%s@." (Json.to_string (to_json ?fn ?tree t))
  | Artefact.Csv ->
      Fmt.pf ppf "%s@." Table.csv_header;
      List.iter
        (fun tbl -> List.iter (Fmt.pf ppf "%s@.") (Table.to_csv_lines tbl))
        (tables ?fn ?tree t)
