(** Translation-validation introspection ([spd validate]).

    For one workload at one memory latency, reads the per-application
    translation-validation ledger through the engine's single request
    path ({!Engine.Query.Spd_verdicts}) and renders it as the
    [spd-validate/1] document: one entry per SpD application with its
    verdict ([proved] / [refuted] / [unknown]), the symbolic
    exploration statistics and the exit/store digests of the original
    tree, plus the program-wide verdict tally.

    The same document backs the [spd validate] CLI, the daemon's
    [validate] method and the [spd report spd-validate] rollup.

    {b Determinism contract}: like [spd why], the JSON document is a
    pure function of the workload and the configuration.  Wall-clock
    time is cached with the ledger row but never serialized — only the
    pretty renderer shows it — so the document is bit-identical across
    job counts, cold/warm caches and CLI/daemon surfaces. *)

val schema : string
(** ["spd-validate/1"] *)

type t = {
  workload : string;
  mem_latency : int;
  reports : Spd_validate.Validate.report list;
      (** the full ledger, in application order *)
}

(** Fetch the SPEC pipeline's validation ledger for a workload.  Raises
    [Invalid_argument] for an unknown workload name and
    {!Engine.Cell_failed} when the cell failed — in particular when a
    [Refuted] verdict raised {!Pipeline.Validation_failed} inside the
    validated preparation. *)
val analyze : ?mem_latency:int -> Engine.Session.t -> string -> t

(** Ledger entries surviving the optional function / tree filters. *)
val selected :
  ?fn:string -> ?tree:int -> t -> Spd_validate.Validate.report list

(** One ledger entry as JSON (without its [func]/[tree] coordinates —
    {!to_json} inlines those). *)
val report_json : Spd_validate.Validate.report -> Spd_telemetry.Json.t

(** The [spd-validate/1] document, optionally filtered. *)
val to_json : ?fn:string -> ?tree:int -> t -> Spd_telemetry.Json.t

(** The verdict table and the summary table, optionally filtered. *)
val tables : ?fn:string -> ?tree:int -> t -> Table.t list

(** Render in any {!Artefact.format}. *)
val render :
  ?fn:string -> ?tree:int -> Artefact.format -> Format.formatter -> t -> unit

(** {1 Grid certification ([spd report --validate])} *)

type certification = {
  cells : int;  (** grid cells certified (workloads × latencies) *)
  applications : int;
  proved : int;
  refuted : int;
  unknown : int;
  failed : (string * string) list;
      (** cells whose validated preparation failed: (cell key, error) —
          a [Refuted] verdict surfaces here, as [Validation_failed] *)
}

(** Certify every SpD application of the paper grid (default latencies
    [[2; 6]]): fetch each cell's validation ledger and tally the
    verdicts.  Failures are contained per cell and reported in
    [failed]. *)
val certify : ?latencies:int list -> Engine.Session.t -> certification

(** [true] iff no refutation and no failed cell; [Unknown] verdicts
    are tolerated (counted and reported). *)
val acceptable : certification -> bool

val pp_certification : Format.formatter -> certification -> unit
