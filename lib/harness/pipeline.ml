(** The four disambiguation pipelines of Table 6-4.

    {v
    source --lower--> trees --all-pairs arcs-->            NAIVE
    NAIVE  --GCD/Banerjee (affine forms)-->                STATIC
    STATIC --profiled path probabilities--SpD heuristic--> SPEC
    NAIVE  --profiled alias counts, drop superfluous-->    PERFECT
    v}

    Every prepared program is validated to produce the same observable
    behaviour (return value and printed output) as the NAIVE baseline. *)

open Spd_ir
module Memarcs = Spd_analysis.Memarcs
module Static = Spd_disambig.Static_disambig
module Heuristic = Spd_core.Heuristic

type kind = Naive | Static | Spec | Perfect

let all = [ Naive; Static; Spec; Perfect ]

let name = function
  | Naive -> "NAIVE"
  | Static -> "STATIC"
  | Spec -> "SPEC"
  | Perfect -> "PERFECT"

let pp ppf k = Fmt.string ppf (name k)

(* ------------------------------------------------------------------ *)
(* Pipeline stages, for wall-clock instrumentation. *)

type stage = Lower | Profile | Spd | Schedule | Simulate

let stages = [ Lower; Profile; Spd; Schedule; Simulate ]

let stage_name = function
  | Lower -> "lower"
  | Profile -> "profile"
  | Spd -> "spd"
  | Schedule -> "schedule"
  | Simulate -> "simulate"

let stage_index = function
  | Lower -> 0
  | Profile -> 1
  | Spd -> 2
  | Schedule -> 3
  | Simulate -> 4

(* ------------------------------------------------------------------ *)

module Config = struct
  type t = {
    check : bool;  (** verify observable equivalence with NAIVE *)
    validate : bool;
        (** translation-validate every SpD application symbolically: a
            [Refuted] verdict is a hard error, and the prepared record
            carries the full verdict ledger *)
    spd_params : Heuristic.params option;
        (** guidance-heuristic knobs (default: {!Heuristic.default_params}) *)
    graft : bool;  (** unroll loop trees before disambiguation (section 7) *)
    mem_latency : int;  (** memory latency in cycles (paper: 2 and 6) *)
    fuel : int option;
        (** traversal budget for every simulator run (profiling, checking,
            timing); [None] = the simulator's default *)
    deadline : float option;
        (** wall-clock budget in seconds for every simulator run *)
    timer : (stage -> float -> unit) option;
        (** called with the elapsed seconds of every instrumented stage *)
    checker_fault : (unit -> unit) option;
        (** consulted at every per-application checker invocation; the
            engine wires the session's [checker-raise] fault here *)
  }

  let default =
    { check = true; validate = false; spd_params = None; graft = false;
      mem_latency = 2; fuel = None; deadline = None; timer = None;
      checker_fault = None }

  let v ?(check = true) ?(validate = false) ?spd_params ?(graft = false)
      ?fuel ?deadline ?timer ?checker_fault ?(mem_latency = 2) () =
    { check; validate; spd_params; graft; mem_latency; fuel; deadline;
      timer; checker_fault }

  (* The canonical encoding of the semantic fields (everything except
     [timer], [checker_fault], [fuel] and [deadline] — the budgets can
     only turn a result into a failure, never change a successfully
     computed value, so they do not participate in cache addressing).
     [validate] is likewise excluded: validation never changes the
     prepared program, it can only fail the preparation, so validated
     and unvalidated cells share their cached numbers; the verdict
     ledger itself is cached under its own payload suffix. *)
  let fingerprint t =
    let params =
      match t.spd_params with
      | None -> "default"
      | Some (p : Heuristic.params) ->
          Printf.sprintf "me=%h,mg=%h,ma=%d" p.max_expansion p.min_gain
            p.max_applications
    in
    Printf.sprintf "check=%b;graft=%b;lat=%d;params=%s" t.check t.graft
      t.mem_latency params
end

(* Every instrumented stage is also a trace span, so a --trace run shows
   the stage breakdown nested under its grid cell's span. *)
let time (config : Config.t) stage f =
  Spd_telemetry.Trace.with_span ~name:("stage:" ^ stage_name stage)
    (fun () ->
      match config.timer with
      | None -> f ()
      | Some cb ->
          let t0 = Spd_telemetry.Clock.now () in
          let r = f () in
          cb stage (Spd_telemetry.Clock.now () -. t0);
          r)

type prepared = {
  kind : kind;
  config : Config.t;
  mem_latency : int;
  prog : Prog.t;
  applications : Heuristic.application list;
      (** SpD applications performed (SPEC only) *)
  decisions : Heuristic.decision list;
      (** the heuristic's full decision ledger (SPEC only) *)
  verdicts : Spd_validate.Validate.report list;
      (** per-application translation-validation ledger, in application
          order (SPEC with [config.validate] only) *)
}

(* ------------------------------------------------------------------ *)
(* Decision-ledger counters.  Registered lazily here and forced eagerly
   by [spd serve], so a metrics snapshot carries them whether or not a
   SPEC pipeline has been prepared yet. *)

let rejection_labels =
  [
    "not-critical"; "not-applicable.arc-not-ambiguous";
    "not-applicable.intervening-reference";
    "not-applicable.address-unavailable"; "below-min-gain";
    "max-applications"; "max-expansion";
  ]

let heuristic_counters =
  lazy
    (let c name = Spd_telemetry.Metrics.counter ("spd.heuristic." ^ name) in
     ( c "candidates",
       c "applied",
       List.map (fun r -> (r, c ("rejected." ^ r))) rejection_labels ))

let validate_counters =
  lazy
    (let c name = Spd_telemetry.Metrics.counter ("spd.validate." ^ name) in
     (c "proved", c "refuted", c "unknown"))

let observe_verdict (v : Spd_validate.Verdict.t) =
  let proved, refuted, unknown = Lazy.force validate_counters in
  Spd_telemetry.Metrics.incr
    (match v with
    | Spd_validate.Verdict.Proved -> proved
    | Spd_validate.Verdict.Refuted _ -> refuted
    | Spd_validate.Verdict.Unknown _ -> unknown)

(** Force registration of the [spd.heuristic.*] and [spd.validate.*]
    counters. *)
let register_metrics () =
  ignore (Lazy.force heuristic_counters);
  ignore (Lazy.force validate_counters)

(* the counter suffix for a rejection (metric names avoid ':') *)
let rejection_label : Heuristic.verdict -> string option =
  let module T = Spd_core.Transform in
  function
  | Heuristic.Applied -> None
  | Heuristic.Rejected_not_critical -> Some "not-critical"
  | Heuristic.Rejected_not_applicable T.Arc_not_ambiguous ->
      Some "not-applicable.arc-not-ambiguous"
  | Heuristic.Rejected_not_applicable T.Intervening_reference ->
      Some "not-applicable.intervening-reference"
  | Heuristic.Rejected_not_applicable T.Address_unavailable ->
      Some "not-applicable.address-unavailable"
  | Heuristic.Rejected_below_min_gain -> Some "below-min-gain"
  | Heuristic.Rejected_max_applications -> Some "max-applications"
  | Heuristic.Rejected_max_expansion -> Some "max-expansion"

let observe_decisions (ds : Heuristic.decision list) =
  let candidates, applied, rejected = Lazy.force heuristic_counters in
  Spd_telemetry.Metrics.incr ~by:(List.length ds) candidates;
  List.iter
    (fun (d : Heuristic.decision) ->
      match rejection_label d.verdict with
      | None -> Spd_telemetry.Metrics.incr applied
      | Some r -> Spd_telemetry.Metrics.incr (List.assoc r rejected))
    ds

(** Profile a program: run it once with instrumentation. *)
let profile_of ?fuel ?deadline (prog : Prog.t) : Spd_sim.Profile.t =
  let profile = Spd_sim.Profile.create () in
  ignore (Spd_sim.Interp.run ~profile ?fuel ?deadline prog);
  profile

exception Behaviour_mismatch of string

(** Raised by a [config.validate] preparation when the symbolic
    equivalence checker refutes an SpD application; the payload names
    the application and renders the concrete counterexample. *)
exception Validation_failed of string

let () =
  Printexc.register_printer (function
    | Validation_failed msg -> Some ("Validation_failed: " ^ msg)
    | _ -> None)

(* The per-application transform checker installed when [config.check]
   holds: every accepted SpD application must leave a structurally valid
   tree that did not shrink (SpD only adds compensation code).  The
   whole-program observable-equivalence check below catches semantic
   drift; this one pins the failure to the exact application. *)
let transform_checker ~func:_ ~(before : Spd_ir.Tree.t)
    (app : Heuristic.application) (after : Spd_ir.Tree.t) =
  Spd_ir.Tree.validate after;
  if Spd_ir.Tree.size after < Spd_ir.Tree.size before then
    raise
      (Behaviour_mismatch
         (Fmt.str "SpD application on tree %d arc #%d->#%d shrank the tree"
            app.tree_id (fst app.arc) (snd app.arc)))

(** Build pipeline [kind] from a lowered program (no arcs yet) under
    [config] (default {!Config.default}).  [config.check] verifies
    observable equivalence with the unoptimized program — the paper
    validated SpD output the same way. *)
let prepare ?(config = Config.default) (kind : kind) (lowered : Prog.t) :
    prepared =
  let { Config.check; validate; spd_params; graft; mem_latency; fuel;
        deadline; timer = _; checker_fault } =
    config
  in
  (* scalar cleanup every pipeline gets: store-to-load forwarding and
     redundant-load elimination, as in the paper's optimizing compiler *)
  let cleaned = Spd_analysis.Forwarding.run lowered in
  (* optional tree grafting (paper section 7): unroll loop trees to expose
     more ambiguous pairs to SpD *)
  let cleaned = if graft then Spd_analysis.Unroll.run cleaned else cleaned in
  let naive = Memarcs.annotate cleaned in
  let prog, applications, decisions, verdicts =
    match kind with
    | Naive -> (naive, [], [], [])
    | Static -> (time config Spd (fun () -> Static.run naive), [], [], [])
    | Spec ->
        let static = time config Spd (fun () -> Static.run naive) in
        let profile =
          time config Profile (fun () -> profile_of ?fuel ?deadline static)
        in
        (* The composed per-application checker: the armed checker fault
           (if any), the structural checks, then the symbolic
           equivalence proof.  [Heuristic.run] calls it sequentially
           within this preparation, so a plain accumulator is safe. *)
        let acc = ref [] in
        let fire_fault () =
          match checker_fault with Some f -> f () | None -> ()
        in
        let composed ~func ~before app after =
          fire_fault ();
          if check then transform_checker ~func ~before app after;
          if validate then begin
            let r =
              Spd_validate.Validate.check_application ~func ~before app after
            in
            observe_verdict r.Spd_validate.Validate.verdict;
            (match r.Spd_validate.Validate.verdict with
            | Spd_validate.Verdict.Refuted cx ->
                raise
                  (Validation_failed
                     (Fmt.str
                        "SpD application on tree %d arc #%d->#%d refuted: \
                         %s (seed %d)"
                        app.Heuristic.tree_id
                        (fst app.Heuristic.arc)
                        (snd app.Heuristic.arc)
                        cx.Spd_validate.Verdict.detail
                        cx.Spd_validate.Verdict.seed))
            | Spd_validate.Verdict.Unknown reason ->
                Spd_telemetry.Log.warn "pipeline.validate.unknown"
                  [
                    ("func", Spd_telemetry.Json.String func);
                    ( "tree",
                      Spd_telemetry.Json.Int app.Heuristic.tree_id );
                    ( "reason",
                      Spd_telemetry.Json.String
                        (Spd_validate.Verdict.reason_text reason) );
                  ]
            | Spd_validate.Verdict.Proved -> ());
            acc := r :: !acc
          end
        in
        let checker =
          if check || validate || checker_fault <> None then Some composed
          else None
        in
        let prog, apps, ds =
          time config Spd (fun () ->
              Heuristic.run ~profile ?checker ?params:spd_params ~mem_latency
                static)
        in
        observe_decisions ds;
        (prog, apps, ds, List.rev !acc)
    | Perfect ->
        let profile =
          time config Profile (fun () -> profile_of ?fuel ?deadline naive)
        in
        (time config Spd (fun () -> Static.perfect ~profile naive), [], [], [])
  in
  Prog.validate prog;
  if check then begin
    let expected = Spd_sim.Interp.observe ?fuel ?deadline naive in
    let got = Spd_sim.Interp.observe ?fuel ?deadline prog in
    if expected <> got then
      raise
        (Behaviour_mismatch
           (Fmt.str "pipeline %s changed program behaviour" (name kind)))
  end;
  { kind; config; mem_latency; prog; applications; decisions; verdicts }

(** Cycle count of a prepared program on [width] functional units. *)
let cycles (p : prepared) ~(width : Spd_machine.Descr.width) : int =
  let descr =
    { Spd_machine.Descr.width; mem_latency = p.mem_latency }
  in
  let timing =
    time p.config Schedule (fun () ->
        Spd_machine.Timing_builder.program descr p.prog)
  in
  (time p.config Simulate (fun () ->
       Spd_sim.Interp.run ~timing ?fuel:p.config.fuel
         ?deadline:p.config.deadline p.prog))
    .cycles

(** Static code size in operations (Figure 6-4's metric). *)
let code_size (p : prepared) : int = Prog.code_size p.prog

(** The paper's speedup metric: [cycles_base / cycles_x - 1]. *)
let speedup ~(base : int) ~(this : int) : float =
  (float_of_int base /. float_of_int this) -. 1.0

(* ------------------------------------------------------------------ *)
(* SpD run-time dynamics *)

type region_dynamics = {
  func : string;
  tree_id : int;
  dep_kind : Memdep.kind;
  arc : int * int;
  alias_commits : int;
  noalias_commits : int;
}

type dynamics = {
  regions : region_dynamics list;
      (** one row per SpD application, sorted (func, tree, arc) *)
  squashed : int;  (** guarded stores squashed across all watched trees *)
}

(** Re-run a prepared program with a watch on every SpD application,
    attributing each traversal of a transformed region to its alias or
    no-alias version.  Cheap no-op for pipelines without applications
    (everything but SPEC). *)
let dynamics (p : prepared) : dynamics =
  match p.applications with
  | [] -> { regions = []; squashed = 0 }
  | apps ->
      let spd = Spd_sim.Profile.Spd.create () in
      let handles =
        List.map
          (fun (a : Heuristic.application) ->
            ( a,
              Spd_sim.Profile.Spd.watch spd ~func:a.func ~tree_id:a.tree_id
                ~predicate:a.predicate ))
          apps
      in
      ignore
        (time p.config Simulate (fun () ->
             Spd_sim.Interp.run ~spd ?fuel:p.config.fuel
               ?deadline:p.config.deadline p.prog));
      let regions =
        List.map
          (fun ((a : Heuristic.application), (r : Spd_sim.Profile.Spd.region))
             ->
            {
              func = a.func;
              tree_id = a.tree_id;
              dep_kind = a.kind;
              arc = a.arc;
              alias_commits = r.alias_commits;
              noalias_commits = r.noalias_commits;
            })
          handles
        |> List.sort (fun a b ->
               compare (a.func, a.tree_id, a.arc) (b.func, b.tree_id, b.arc))
      in
      { regions; squashed = (Spd_sim.Profile.Spd.totals spd).squashed }
