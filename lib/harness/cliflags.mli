(** Shared command-line flag parsers.

    One parser per flag shape, returning [Error] with a friendly
    one-line hint naming the flag — used by both CLIs ([bin/spd] via
    cmdliner converters, [bench/main] directly) and by the daemon's
    per-request quota validation, so a malformed [--fuel]/[--deadline]
    is rejected with identical wording everywhere. *)

(** [pos_int ~flag s] parses a positive (>= 1) integer;
    ["--fuel expects a positive integer, got \"x\""] otherwise. *)
val pos_int : flag:string -> string -> (int, string) result

(** [pos_float ~flag s] parses a positive, finite number of seconds. *)
val pos_float : flag:string -> string -> (float, string) result

(** [widths s] parses a non-empty comma-separated list of positive
    machine widths, e.g. ["1,2,4,8"].  [flag] defaults to
    ["--widths"]. *)
val widths : ?flag:string -> string -> (int list, string) result
