(** Shared command-line flag parsers.

    [bin/spd] (cmdliner) and [bench/main] (hand-rolled) historically
    rejected a malformed [--fuel] or [--deadline] with different
    messages; both now route through these parsers, so a bad flag gets
    the same friendly one-line hint everywhere (including the daemon's
    per-request quota errors, which reuse the wording). *)

let pos_int ~flag s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n ->
      Error (Printf.sprintf "%s expects a positive integer, got %d" flag n)
  | None ->
      Error (Printf.sprintf "%s expects a positive integer, got %S" flag s)

let pos_float ~flag s =
  match float_of_string_opt (String.trim s) with
  | Some v when v > 0.0 && Float.is_finite v -> Ok v
  | Some v ->
      Error
        (Printf.sprintf "%s expects a positive number of seconds, got %g"
           flag v)
  | None ->
      Error
        (Printf.sprintf "%s expects a positive number of seconds, got %S"
           flag s)

let widths ?(flag = "--widths") s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then
    Error
      (Printf.sprintf "%s expects a comma-separated list of widths, got %S"
         flag s)
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match pos_int ~flag p with
          | Ok n -> go (n :: acc) rest
          | Error _ ->
              Error
                (Printf.sprintf
                   "%s expects a comma-separated list of positive widths, \
                    got %S"
                   flag s))
    in
    go [] parts
