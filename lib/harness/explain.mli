(** Schedule introspection and cycle attribution ([spd explain]).

    For one workload, prepares the STATIC and SPEC pipelines, schedules
    every SPEC tree on the requested machine, simulates with a profile,
    and renders cycle-by-FU occupancy grids, critical-path attributions
    ({!Spd_machine.Critpath}) and a program-wide per-region table whose
    cycle column sums exactly to the simulator's reported total. *)

module Schedule = Spd_machine.Schedule
module Critpath = Spd_machine.Critpath

(** Schema identifier of the JSON document: ["spd-explain/1"]. *)
val schema : string

(** One scheduled-and-analyzed SPEC tree. *)
type tree_view = {
  func : string;
  tree : Spd_ir.Tree.t;
  schedule : Schedule.t;
  critpath : Critpath.t;
  static_span : int option;  (** same tree's makespan under STATIC *)
  static_ambig : int option;
      (** STATIC makespan cycles attributed to ambiguous arcs *)
  traversals : int;
  cycles : int;  (** simulated cycles attributed to this tree *)
}

type t = {
  workload : string;
  width : int;
  mem_latency : int;
  total_cycles : int;  (** the simulator's reported cycle count *)
  total_traversals : int;
  applications : Spd_core.Heuristic.application list;
  trees : tree_view list;  (** every tree of the program, in order *)
}

(** Analyze [workload] on a [width]-unit machine (default 5 FUs,
    2-cycle memory).  Raises [Invalid_argument] for an unknown workload
    name. *)
val analyze : ?width:int -> ?mem_latency:int -> string -> t

(** The trees matching the [--fn] / [--tree] filters. *)
val selected : ?fn:string -> ?tree:int -> t -> tree_view list

(** The cycle-by-FU occupancy grid of one tree, SpD versions
    annotated. *)
val grid_table : t -> tree_view -> Table.t

(** The critical-path attribution of one tree; category totals sum to
    the makespan. *)
val critpath_table : tree_view -> Table.t

(** The program-wide per-region attribution; the cycles column sums
    exactly to [total_cycles] (asserted by the test suite). *)
val regions_table : t -> Table.t

(** Every table of an explain run: per selected tree the occupancy grid
    and critical path, then the program-wide region attribution. *)
val tables : ?fn:string -> ?tree:int -> t -> Table.t list

(** The [spd-explain/1] JSON document. *)
val to_json : ?fn:string -> ?tree:int -> t -> Spd_telemetry.Json.t

val render :
  ?fn:string ->
  ?tree:int -> Artefact.format -> Format.formatter -> t -> unit
