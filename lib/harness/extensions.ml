(** Experiments beyond the paper's evaluation section, implementing its
    discussion and future-work items:

    - {b hardware dynamic disambiguation} (section 2.3): the
      88110-style small-window load/store reordering alternative, to show
      that SpD's compile-time scope beats small hardware windows;
    - {b tree grafting} (section 7): unrolling loop trees to expose more
      ambiguous pairs to SpD;
    - {b guidance-parameter ablation} (section 5.3): how [MaxExpansion]
      and [MinGain] trade code growth against speedup.

    Like {!Report}, each experiment takes its {!Engine.Session.t}
    explicitly, computes its rows on the session's domain pool into
    {!Table.t} data and renders afterwards, so the output is
    independent of the number of jobs and identical across output
    formats. *)

module W = Spd_workloads
module H = Spd_core.Heuristic

let rows s f xs = Engine.Session.parallel_map s f xs

(* ------------------------------------------------------------------ *)

(** Extension A: SPEC vs hardware dynamic disambiguation windows. *)
let ext_dynamic_tables s =
  let latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  let data =
    rows s
      (fun (w : W.Workload.t) ->
        let bench = w.name in
        let static =
          Engine.Session.prepared s ~bench ~latency Pipeline.Static
        in
        let base = Pipeline.cycles static ~width in
        let hw window =
          Spd_machine.Dynamic.cycles ~window ~width ~mem_latency:latency
            static.prog
        in
        let spec =
          Engine.Session.cycles s ~bench ~latency Pipeline.Spec ~width
        in
        let frac c = Pipeline.speedup ~base ~this:c in
        ( bench,
          [ frac (hw 2); frac (hw 4); frac (hw 8); frac (hw 32); frac spec ] ))
      W.Registry.all
  in
  [
    Table.v ~id:"ext_dynamic"
      ~title:
        "Extension A: SpD vs hardware dynamic disambiguation (section 2.3)"
      ~notes:
        [
          "5 FU machine, 6-cycle memory; HW reorders within a W-reference \
           window on";
          "the STATIC-disambiguated code; speedups over STATIC.";
        ]
      ~label_header:"Program"
      ~columns:[ "HW W=2"; "HW W=4"; "HW W=8"; "HW W=32"; "SPEC" ]
      (List.map
         (fun (bench, fracs) ->
           Table.row bench (List.map (fun f -> Table.Pct f) fracs))
         data);
  ]

(* ------------------------------------------------------------------ *)

(** Extension B: the effect of tree grafting (loop unrolling) on SpD. *)
let ext_grafting_tables s =
  let latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  let data =
    rows s
      (fun (w : W.Workload.t) ->
        let lowered = Engine.Session.lowered s w.name in
        let measure ~graft =
          let config = Pipeline.Config.v ~graft ~mem_latency:latency () in
          let static = Pipeline.prepare ~config Pipeline.Static lowered in
          let spec = Pipeline.prepare ~config Pipeline.Spec lowered in
          ( List.length spec.applications,
            Pipeline.speedup
              ~base:(Pipeline.cycles static ~width)
              ~this:(Pipeline.cycles spec ~width) )
        in
        let apps0, s0 = measure ~graft:false in
        let apps1, s1 = measure ~graft:true in
        (w.name, apps0, s0, apps1, s1))
      W.Registry.all
  in
  [
    Table.v ~id:"ext_grafting"
      ~title:"Extension B: tree grafting (section 7 future work)"
      ~notes:
        [
          "5 FU machine, 6-cycle memory; SPEC with and without one round \
           of loop-tree";
          "replication; speedups over STATIC of the same code shape.";
        ]
      ~label_header:"Program"
      ~groups:[ ("ungrafted", 2); ("grafted", 2) ]
      ~columns:[ "apps"; "SPEC"; "apps"; "SPEC+graft" ]
      (List.map
         (fun (name, apps0, s0, apps1, s1) ->
           Table.row name
             [ Table.Int apps0; Table.Pct s0; Table.Int apps1; Table.Pct s1 ])
         data);
  ]

(* ------------------------------------------------------------------ *)

(** Extension C: guidance heuristic parameter ablation. *)
let ext_params_tables s =
  let latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  let measure params =
    let speedups, growths =
      List.split
        (List.map
           (fun (w : W.Workload.t) ->
             let lowered = Engine.Session.lowered s w.name in
             let static =
               Pipeline.prepare
                 ~config:(Pipeline.Config.v ~mem_latency:latency ())
                 Pipeline.Static lowered
             in
             let spec =
               Pipeline.prepare
                 ~config:
                   (Pipeline.Config.v ~spd_params:params
                      ~mem_latency:latency ())
                 Pipeline.Spec lowered
             in
             ( 1.0
               +. Pipeline.speedup
                    ~base:(Pipeline.cycles static ~width)
                    ~this:(Pipeline.cycles spec ~width),
               float_of_int (Pipeline.code_size spec)
               /. float_of_int (Pipeline.code_size static) ))
           W.Registry.nrc)
    in
    let geomean xs =
      exp
        (List.fold_left (fun a x -> a +. log x) 0.0 xs
        /. float_of_int (List.length xs))
    in
    (geomean speedups -. 1.0, geomean growths -. 1.0)
  in
  let sweep to_params values =
    rows s (fun v -> (v, measure (to_params v))) values
  in
  let expansions =
    sweep
      (fun me -> { H.default_params with max_expansion = me })
      [ 1.0; 1.25; 1.5; 2.0; 4.0; 8.0 ]
  and gains =
    sweep
      (fun mg -> { H.default_params with min_gain = mg })
      [ 0.25; 0.5; 0.75; 1.5; 3.0; 6.0 ]
  in
  let table ~id ~knob ~fixed data =
    Table.v ~id
      ~title:
        (Printf.sprintf
           "Extension C: guidance heuristic ablation — %s sweep (%s)" knob
           fixed)
      ~notes:
        [
          "NRC geometric means at 5 FU, 6-cycle memory: SPEC speedup over \
           STATIC and";
          "code growth.";
        ]
      ~label_header:knob ~columns:[ "speedup"; "code growth" ]
      (List.map
         (fun (v, (s, g)) ->
           Table.row (Printf.sprintf "%.2f" v) [ Table.Pct s; Table.Pct g ])
         data)
  in
  [
    table ~id:"ext_params.max_expansion" ~knob:"MaxExpansion"
      ~fixed:(Printf.sprintf "MinGain = %.2f" H.default_params.min_gain)
      expansions;
    table ~id:"ext_params.min_gain" ~knob:"MinGain"
      ~fixed:
        (Printf.sprintf "MaxExpansion = %.2f" H.default_params.max_expansion)
      gains;
  ]

(* ------------------------------------------------------------------ *)

let render_tables tables s ppf () = List.iter (Table.pp ppf) (tables s)

let ext_dynamic = render_tables ext_dynamic_tables
let ext_grafting = render_tables ext_grafting_tables
let ext_params = render_tables ext_params_tables

let all s ppf () =
  ext_dynamic s ppf ();
  ext_grafting s ppf ();
  ext_params s ppf ()
