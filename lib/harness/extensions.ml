(** Experiments beyond the paper's evaluation section, implementing its
    discussion and future-work items:

    - {b hardware dynamic disambiguation} (section 2.3): the
      88110-style small-window load/store reordering alternative, to show
      that SpD's compile-time scope beats small hardware windows;
    - {b tree grafting} (section 7): unrolling loop trees to expose more
      ambiguous pairs to SpD;
    - {b guidance-parameter ablation} (section 5.3): how [MaxExpansion]
      and [MinGain] trade code growth against speedup.

    Each generator computes its rows on the default session's domain
    pool and then renders sequentially, so the output is independent of
    the number of jobs. *)

module W = Spd_workloads
module H = Spd_core.Heuristic

let hline ppf width = Fmt.pf ppf "%s@." (String.make width '-')

let rows f xs =
  Engine.Session.parallel_map (Experiment.default_session ()) f xs

(* ------------------------------------------------------------------ *)

(** Extension A: SPEC vs hardware dynamic disambiguation windows. *)
let ext_dynamic ppf () =
  Fmt.pf ppf
    "@.Extension A: SpD vs hardware dynamic disambiguation (section 2.3)@.";
  Fmt.pf ppf
    "5 FU machine, 6-cycle memory; HW reorders within a W-reference \
     window on@.the STATIC-disambiguated code; speedups over STATIC.@.@.";
  hline ppf 78;
  Fmt.pf ppf "%-10s %9s %9s %9s %9s %9s@." "Program" "HW W=2" "HW W=4"
    "HW W=8" "HW W=32" "SPEC";
  hline ppf 78;
  let latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  rows
    (fun (w : W.Workload.t) ->
      let bench = w.name in
      let static = Experiment.prepared ~bench ~latency Pipeline.Static in
      let base = Pipeline.cycles static ~width in
      let hw window =
        Spd_machine.Dynamic.cycles ~window ~width ~mem_latency:latency
          static.prog
      in
      let spec = Experiment.cycles ~bench ~latency Pipeline.Spec ~width in
      let pct c = 100.0 *. Pipeline.speedup ~base ~this:c in
      (bench, pct (hw 2), pct (hw 4), pct (hw 8), pct (hw 32), pct spec))
    W.Registry.all
  |> List.iter (fun (bench, w2, w4, w8, w32, spec) ->
         Fmt.pf ppf "%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %8.1f%%@." bench
           w2 w4 w8 w32 spec);
  hline ppf 78

(* ------------------------------------------------------------------ *)

(** Extension B: the effect of tree grafting (loop unrolling) on SpD. *)
let ext_grafting ppf () =
  Fmt.pf ppf "@.Extension B: tree grafting (section 7 future work)@.";
  Fmt.pf ppf
    "5 FU machine, 6-cycle memory; SPEC with and without one round of \
     loop-tree@.replication; speedups over STATIC of the same code shape.@.@.";
  hline ppf 76;
  Fmt.pf ppf "%-10s | %6s %9s | %6s %9s@." "Program" "apps" "SPEC"
    "apps" "SPEC+graft";
  hline ppf 76;
  let latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  rows
    (fun (w : W.Workload.t) ->
      let lowered = Experiment.lowered w.name in
      let measure ~graft =
        let config = Pipeline.Config.v ~graft ~mem_latency:latency () in
        let static = Pipeline.prepare ~config Pipeline.Static lowered in
        let spec = Pipeline.prepare ~config Pipeline.Spec lowered in
        ( List.length spec.applications,
          Pipeline.speedup
            ~base:(Pipeline.cycles static ~width)
            ~this:(Pipeline.cycles spec ~width) )
      in
      let apps0, s0 = measure ~graft:false in
      let apps1, s1 = measure ~graft:true in
      (w.name, apps0, s0, apps1, s1))
    W.Registry.all
  |> List.iter (fun (name, apps0, s0, apps1, s1) ->
         Fmt.pf ppf "%-10s | %6d %8.1f%% | %6d %8.1f%%@." name apps0
           (100.0 *. s0) apps1 (100.0 *. s1));
  hline ppf 76

(* ------------------------------------------------------------------ *)

(** Extension C: guidance heuristic parameter ablation. *)
let ext_params ppf () =
  Fmt.pf ppf
    "@.Extension C: guidance heuristic ablation (MaxExpansion / MinGain)@.";
  Fmt.pf ppf
    "NRC geometric means at 5 FU, 6-cycle memory: SPEC speedup over \
     STATIC and@.code growth, as the two knobs of Figure 5-1 vary.@.";
  let latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  let measure params =
    let speedups, growths =
      List.split
        (List.map
           (fun (w : W.Workload.t) ->
             let lowered = Experiment.lowered w.name in
             let static =
               Pipeline.prepare
                 ~config:(Pipeline.Config.v ~mem_latency:latency ())
                 Pipeline.Static lowered
             in
             let spec =
               Pipeline.prepare
                 ~config:
                   (Pipeline.Config.v ~spd_params:params
                      ~mem_latency:latency ())
                 Pipeline.Spec lowered
             in
             ( 1.0
               +. Pipeline.speedup
                    ~base:(Pipeline.cycles static ~width)
                    ~this:(Pipeline.cycles spec ~width),
               float_of_int (Pipeline.code_size spec)
               /. float_of_int (Pipeline.code_size static) ))
           W.Registry.nrc)
    in
    let geomean xs =
      exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))
    in
    (100.0 *. (geomean speedups -. 1.0), 100.0 *. (geomean growths -. 1.0))
  in
  let sweep to_params values =
    rows (fun v -> (v, measure (to_params v))) values
  in
  let expansions =
    sweep
      (fun me -> { H.default_params with max_expansion = me })
      [ 1.0; 1.25; 1.5; 2.0; 4.0; 8.0 ]
  and gains =
    sweep
      (fun mg -> { H.default_params with min_gain = mg })
      [ 0.25; 0.5; 0.75; 1.5; 3.0; 6.0 ]
  in
  Fmt.pf ppf "@.MaxExpansion sweep (MinGain = %.2f):@." H.default_params.min_gain;
  hline ppf 52;
  Fmt.pf ppf "%-14s %12s %12s@." "MaxExpansion" "speedup" "code growth";
  hline ppf 52;
  List.iter
    (fun (me, (s, g)) -> Fmt.pf ppf "%-14.2f %11.1f%% %11.1f%%@." me s g)
    expansions;
  hline ppf 52;
  Fmt.pf ppf "@.MinGain sweep (MaxExpansion = %.2f):@." H.default_params.max_expansion;
  hline ppf 52;
  Fmt.pf ppf "%-14s %12s %12s@." "MinGain" "speedup" "code growth";
  hline ppf 52;
  List.iter
    (fun (mg, (s, g)) -> Fmt.pf ppf "%-14.2f %11.1f%% %11.1f%%@." mg s g)
    gains;
  hline ppf 52

let all ppf () =
  ext_dynamic ppf ();
  ext_grafting ppf ();
  ext_params ppf ()
