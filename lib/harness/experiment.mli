(** Experiment driver: a thin, deprecated façade over
    {!Engine.Session}.

    Historically this module held a process-wide default session behind
    [default_session]/[set_default_session].  That hidden mutable
    global is gone — a concurrent daemon cannot tolerate it — and every
    entry point now takes the session explicitly.  New code should
    build an {!Engine.Query.t} and call {!Engine.Session.submit}
    directly; these wrappers only keep the historical raising
    signatures alive for scripts and tests. *)

(** [with_session s f] runs [f s] and closes [s] afterwards, whether
    [f] returns or raises.  The scoped replacement for the old
    [set_default_session]. *)
val with_session : Engine.Session.t -> (Engine.Session.t -> 'a) -> 'a

(** The one request path, re-exported: [submit s q] is
    {!Engine.Session.submit}. *)
val submit : Engine.Session.t -> Engine.Query.t -> Engine.value Engine.outcome

(** Lowered IR of a built-in benchmark (memoized). *)
val lowered : Engine.Session.t -> string -> Spd_ir.Prog.t

(** Prepared pipeline for a benchmark at a memory latency (memoized). *)
val prepared :
  Engine.Session.t ->
  bench:string ->
  latency:int -> Pipeline.kind -> Pipeline.prepared

(** {1 Deprecated raising shims}

    Each is {!Engine.Session.submit} plus a projection; they raise
    {!Engine.Cell_failed} on a failed cell. *)

(** Measured cycle count (memoized). *)
val cycles :
  Engine.Session.t ->
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> int

(** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
val speedup_over_naive :
  Engine.Session.t ->
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> float

(** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
val spec_over_static :
  Engine.Session.t ->
  bench:string -> latency:int -> width:Spd_machine.Descr.width -> float

(** SpD application counts by dependence kind (Table 6-3 row). *)
val spd_counts :
  Engine.Session.t -> bench:string -> latency:int -> int * int * int

(** Code growth of SPEC relative to STATIC, as a fraction (Figure 6-4). *)
val code_growth : Engine.Session.t -> bench:string -> latency:int -> float

(** Run-time dynamics of the SPEC pipeline's SpD applications. *)
val spd_dynamics :
  Engine.Session.t -> bench:string -> latency:int -> Pipeline.dynamics

(** The guidance heuristic's full decision ledger for the SPEC
    pipeline. *)
val spd_decisions :
  Engine.Session.t ->
  bench:string -> latency:int -> Spd_core.Heuristic.decision list

(** Every failure the session has recorded, sorted by cell key. *)
val failures : Engine.Session.t -> Engine.failure list
