(** Experiment driver: the sealed, session-backed façade the table and
    figure generators share.

    All mutable state (memo tables, the domain pool, the on-disk
    cache) lives inside an {!Engine.Session}; nothing here exposes it.
    Callers that need explicit control — parallelism, the on-disk
    cache, isolation between runs — create their own session and
    either use it directly or install it with
    {!set_default_session}. *)

(** The process-wide default session (created on first use, with
    sequential fallback behaviour and no on-disk cache). *)
val default_session : unit -> Engine.Session.t

(** Replace the default session, e.g. with one created with [~jobs] and
    [~disk_cache:true] from a [--jobs] command-line flag. *)
val set_default_session : Engine.Session.t -> unit

(** Lowered IR of a built-in benchmark (memoized). *)
val lowered : string -> Spd_ir.Prog.t

(** Prepared pipeline for a benchmark at a memory latency (memoized). *)
val prepared :
  bench:string ->
  latency:int -> Pipeline.kind -> Pipeline.prepared

(** Measured cycle count (memoized). *)
val cycles :
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> int

(** Speedup of [kind] over NAIVE, the metric of Figure 6-2. *)
val speedup_over_naive :
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> float

(** Speedup of SPEC over STATIC, the metric of Figure 6-3. *)
val spec_over_static :
  bench:string -> latency:int -> width:Spd_machine.Descr.width -> float

(** SpD application counts by dependence kind (Table 6-3 row). *)
val spd_counts : bench:string -> latency:int -> int * int * int

(** Code growth of SPEC relative to STATIC, as a fraction (Figure 6-4). *)
val code_growth : bench:string -> latency:int -> float

(** Run-time dynamics of the SPEC pipeline's SpD applications. *)
val spd_dynamics : bench:string -> latency:int -> Pipeline.dynamics

(** {1 Failure-contained variants}

    A broken cell comes back as [Failed] instead of raising, so
    renderers can print [n/a] and keep going. *)

val cycles_result :
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> int Engine.outcome

val speedup_over_naive_result :
  bench:string ->
  latency:int ->
  Pipeline.kind -> width:Spd_machine.Descr.width -> float Engine.outcome

val spec_over_static_result :
  bench:string ->
  latency:int ->
  width:Spd_machine.Descr.width -> float Engine.outcome

val spd_counts_result :
  bench:string -> latency:int -> (int * int * int) Engine.outcome

val code_size_result :
  bench:string -> latency:int -> Pipeline.kind -> int Engine.outcome

val code_growth_result : bench:string -> latency:int -> float Engine.outcome

val spd_dynamics_result :
  bench:string -> latency:int -> Pipeline.dynamics Engine.outcome

(** Every failure the default session has recorded, sorted by cell key. *)
val failures : unit -> Engine.failure list
