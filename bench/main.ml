(** Benchmark harness.

    [dune exec bench/main.exe] regenerates every table and figure of the
    paper's evaluation section (section 6) from this reproduction:

    - Table 6-1  operation latencies (machine configuration)
    - Table 6-2  benchmark inventory
    - Table 6-3  frequency of SpD application by dependence type
    - Table 6-4  the four disambiguators
    - Figure 6-2 speedup over NAIVE on a 5-FU machine (2 & 6 cycle memory)
    - Figure 6-3 speedup of SPEC over STATIC vs machine width (NRC)
    - Figure 6-4 code size increase due to SpD

    Subcommands select individual artefacts; [micro] additionally runs
    Bechamel micro-benchmarks of the compiler passes themselves.

    Flags (anywhere on the command line):
    - [--jobs N]     size of the engine's domain pool (default:
      [Domain.recommended_domain_count ()]); [--jobs 1] is sequential
      and emits bit-identical numbers
    - [--no-cache]   disable the content-addressed on-disk result cache
      ([_spd_cache/])
    - [--timings]    append the engine's per-stage wall-clock report
    - [--trace FILE] write a Chrome trace-event JSON of the run (spans
      per grid cell, with pipeline-stage child spans), loadable in
      Perfetto / chrome://tracing
    - [--format F]   output format: pretty (default), json (one
      [spd-report/1] document with every table, the failures and a
      metrics snapshot) or csv (long format)
    - [--retries N]  attempts per grid cell before recording a failure
    - [--fuel N]     simulator traversal budget per run
    - [--deadline S] per-cell wall-clock budget in seconds
    - [--widths A,B] machine widths for Figure 6-3 (default 1..8)
    - [--inject-fault SPEC] deterministic fault injection, e.g.
      [cache-corrupt:1], [cell-raise:adi/2/SPEC], [fuel:1000]

    A run with failed cells renders them as [n/a] (JSON [null]), lists
    them in the failure appendix ([failures] key) and exits nonzero. *)

module Report = Spd_harness.Report
module Engine = Spd_harness.Engine
module Faults = Spd_harness.Faults
module Artefact = Spd_harness.Artefact
module Trace = Spd_telemetry.Trace

let ppf = Fmt.stdout

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the tool chain *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let kernel = (Spd_workloads.Registry.by_name "moment").source in
  let lowered = Spd_lang.Lower.compile kernel in
  let naive = Spd_analysis.Memarcs.annotate (Spd_analysis.Forwarding.run lowered) in
  let static = Spd_disambig.Static_disambig.run naive in
  let a_tree =
    (* the largest tree with ambiguous arcs, for pass-level benches *)
    let best = ref None in
    Spd_ir.Prog.iter_trees
      (fun _ t ->
        if Spd_ir.Tree.ambiguous_arcs t <> [] then
          match !best with
          | Some b when Spd_ir.Tree.size b >= Spd_ir.Tree.size t -> ()
          | _ -> best := Some t)
      static;
    Option.get !best
  in
  let tests =
    [
      Test.make ~name:"frontend: parse+check+lower"
        (Staged.stage (fun () -> Spd_lang.Lower.compile kernel));
      Test.make ~name:"analysis: memory arcs"
        (Staged.stage (fun () -> Spd_analysis.Memarcs.annotate lowered));
      Test.make ~name:"disambig: GCD/Banerjee"
        (Staged.stage (fun () -> Spd_disambig.Static_disambig.run naive));
      Test.make ~name:"ddg: build+asap"
        (Staged.stage (fun () ->
             Spd_analysis.Ddg.asap
               (Spd_analysis.Ddg.build ~mem_latency:2 a_tree)));
      Test.make ~name:"scheduler: 4-wide list schedule"
        (Staged.stage (fun () ->
             let g = Spd_analysis.Ddg.build ~mem_latency:2 a_tree in
             Spd_machine.Scheduler.run ~fus:4 g));
      Test.make ~name:"spd: heuristic on program"
        (Staged.stage (fun () ->
             Spd_core.Heuristic.run ~mem_latency:2 static));
      Test.make ~name:"simulator: full run"
        (Staged.stage (fun () -> Spd_sim.Interp.run lowered));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"passes" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pf ppf "@.Micro-benchmarks of the tool chain (ns/run)@.";
  Fmt.pf ppf "%s@." (String.make 60 '-');
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> (name, est) :: acc
        | _ -> acc)
      results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) -> Fmt.pf ppf "%-44s %12.0f@." name est)
    rows;
  Fmt.pf ppf "%s@." (String.make 60 '-')

(* ------------------------------------------------------------------ *)

let usage () =
  Fmt.epr
    "usage: main.exe [all|micro%a] [--jobs N] [--no-cache] [--timings] \
     [--trace FILE] [--format pretty|json|csv] [--retries N] [--fuel N] \
     [--deadline S] [--widths A,B,..] [--inject-fault SPEC]@."
    (Fmt.list ~sep:Fmt.nop (fun ppf n -> Fmt.pf ppf "|%s" n))
    (Artefact.names ());
  exit 1

(* one-line diagnosis for a malformed flag value; no exception trace.
   The parsers themselves live in Cliflags, shared with bin/spd. *)
let hint fmt = Fmt.kstr (fun s -> Fmt.epr "main.exe: %s@." s; exit 1) fmt

let or_hint = function Ok v -> v | Error msg -> hint "%s" msg
let int_flag flag n = or_hint (Spd_harness.Cliflags.pos_int ~flag n)
let float_flag flag n = or_hint (Spd_harness.Cliflags.pos_float ~flag n)
let widths_flag s = or_hint (Spd_harness.Cliflags.widths s)

let () =
  let jobs = ref None in
  let disk_cache = ref true in
  let timings = ref false in
  let retries = ref None in
  let fuel = ref None in
  let deadline = ref None in
  let faults = ref Faults.none in
  let trace = ref None in
  let format = ref Artefact.Pretty in
  let rest = ref [] in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: tl -> jobs := Some (int_flag "--jobs" n); parse tl
    | "--no-cache" :: tl -> disk_cache := false; parse tl
    | "--timings" :: tl -> timings := true; parse tl
    | "--trace" :: f :: tl -> trace := Some f; parse tl
    | "--format" :: f :: tl -> (
        match Artefact.format_of_string f with
        | Some fm -> format := fm; parse tl
        | None -> hint "--format expects pretty, json or csv, got %S" f)
    | "--retries" :: n :: tl ->
        retries := Some (int_flag "--retries" n); parse tl
    | "--fuel" :: n :: tl -> fuel := Some (int_flag "--fuel" n); parse tl
    | "--deadline" :: n :: tl ->
        deadline := Some (float_flag "--deadline" n); parse tl
    | "--widths" :: w :: tl -> Report.set_widths (widths_flag w); parse tl
    | "--inject-fault" :: spec :: tl -> (
        match Faults.parse spec with
        | Ok f -> faults := f; parse tl
        | Error msg -> hint "--inject-fault: %s" msg)
    | [ flag ]
      when List.mem flag
             [ "--jobs"; "--retries"; "--fuel"; "--deadline"; "--widths";
               "--inject-fault"; "--trace"; "--format" ] ->
        hint "%s expects a value" flag
    | arg :: tl -> rest := arg :: !rest; parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let failed =
    (* [capture] writes the trace file even when a grid cell raises *)
    Trace.capture !trace (fun () ->
        Spd_harness.Experiment.with_session
          (Engine.Session.create ?jobs:!jobs ~disk_cache:!disk_cache
             ?retries:!retries ?fuel:!fuel ?deadline:!deadline
             ~faults:!faults ())
          (fun session ->
            let render names =
              Artefact.render ~session !format ppf (Artefact.of_names names)
            in
            (match (List.rev !rest, !format) with
            | ([] | [ "all" ]), Artefact.Pretty ->
                render (Artefact.paper_set @ Artefact.extension_set);
                micro ()
            | ([] | [ "all" ]), _ ->
                (* micro is interactive-only: its numbers are pure wall
                   clock *)
                render (Artefact.paper_set @ Artefact.extension_set)
            | [ "micro" ], Artefact.Pretty -> micro ()
            | [ "micro" ], _ -> hint "micro supports only --format pretty"
            | [ "timings" ], Artefact.Pretty -> timings := true
            | [ name ], _ -> (
                match Artefact.find name with
                | Some _ -> render [ name ]
                | None ->
                    hint "unknown artefact %S (one of: all, micro, %s)" name
                      (String.concat ", " (Artefact.names ())))
            | _ -> usage ());
            (match !format with
            | Artefact.Pretty ->
                if !timings then Report.timings session ppf ();
                Report.failure_appendix session ppf ()
            | _ -> ());
            Spd_harness.Experiment.failures session <> []))
  in
  if failed then exit 2
