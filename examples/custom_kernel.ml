(** Bring-your-own kernel: compile a mini-C file (or a built-in fallback),
    sweep machine widths, and report where SPEC starts to beat STATIC —
    the crossover the paper's Figure 6-3 is about.

    Run with: [dune exec examples/custom_kernel.exe -- [FILE]] *)

module Pipeline = Spd_harness.Pipeline

let fallback =
  {|
double u[128];
double v[128];
double w[128];

double triad(double a[], double b[], double c[], int n) {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    a[i] = b[i] * 2.5 + s;
    s = s + c[i] - a[i] * 0.125;
  }
  return s;
}

int main() {
  int i;
  double r;
  for (i = 0; i < 128; i = i + 1) { u[i] = 0.0; v[i] = 0.5 * i; w[i] = 1.0; }
  r = triad(u, v, w, 128);
  print_float(r);
  return (int)r;
}
|}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let source =
    if Array.length Sys.argv > 1 then read_file Sys.argv.(1) else fallback
  in
  let lowered = Spd_lang.Lower.compile source in
  List.iter
    (fun mem_latency ->
      Fmt.pr "@.%d-cycle memory latency@." mem_latency;
      Fmt.pr "  %-6s %10s %10s %10s@." "width" "STATIC" "SPEC" "SPEC gain";
      let static = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Static lowered in
      let spec = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Spec lowered in
      let crossover = ref None in
      List.iter
        (fun fus ->
          let width = Spd_machine.Descr.Fus fus in
          let cst = Pipeline.cycles static ~width in
          let csp = Pipeline.cycles spec ~width in
          let gain = Pipeline.speedup ~base:cst ~this:csp in
          if gain > 0.0 && !crossover = None then crossover := Some fus;
          Fmt.pr "  %-6d %10d %10d %9.1f%%@." fus cst csp (100.0 *. gain))
        [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      match !crossover with
      | Some f ->
          Fmt.pr "  -> SpD pays off from %d functional unit(s) upward@." f
      | None -> Fmt.pr "  -> SpD does not pay off on this kernel@.")
    [ 2; 6 ]
