// Smoothing of data.
// Generated from lib/workloads/smooft.ml -- run with:
//   dune exec bin/spd.exe -- run examples/kernels/smooft.c -p spec -w 5

double reduce_angle(double x) {
  /* reduce into [-pi, pi] */
  int k;
  k = (int)(x / 6.283185307179586);
  x = x - k * 6.283185307179586;
  if (x > 3.141592653589793) x = x - 6.283185307179586;
  if (x < -3.141592653589793) x = x + 6.283185307179586;
  return x;
}

double my_sin(double xin) {
  double x; double x2; double term; double sum;
  int k;
  x = reduce_angle(xin);
  x2 = x * x;
  term = x;
  sum = x;
  for (k = 1; k < 10; k = k + 1) {
    term = -term * x2 / ((2.0 * k) * (2.0 * k + 1.0));
    sum = sum + term;
  }
  return sum;
}

double my_cos(double xin) {
  double x; double x2; double term; double sum;
  int k;
  x = reduce_angle(xin);
  x2 = x * x;
  term = 1.0;
  sum = 1.0;
  for (k = 1; k < 10; k = k + 1) {
    term = -term * x2 / ((2.0 * k - 1.0) * (2.0 * k));
    sum = sum + term;
  }
  return sum;
}

double my_sqrt(double x) {
  double r;
  int k;
  if (x <= 0.0) return 0.0;
  r = x;
  if (r > 1.0) r = x * 0.5 + 0.5;
  for (k = 0; k < 30; k = k + 1) {
    r = 0.5 * (r + x / r);
  }
  return r;
}

void fft(double xr[], double xi[], int n, int isign) {
  int i; int j; int k; int m;
  int mmax; int istep;
  double tr; double ti; double wr; double wi; double wpr; double wpi;
  double wtemp; double theta;
  /* bit reversal */
  j = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i < j) {
      tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
      ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
    }
    k = n / 2;
    while (k >= 1 && j >= k) {
      j = j - k;
      k = k / 2;
    }
    j = j + k;
  }
  /* Danielson-Lanczos */
  mmax = 1;
  while (mmax < n) {
    istep = mmax * 2;
    theta = isign * 3.141592653589793 / mmax;
    wtemp = my_sin(0.5 * theta);
    wpr = -2.0 * wtemp * wtemp;
    wpi = my_sin(theta);
    wr = 1.0;
    wi = 0.0;
    for (m = 0; m < mmax; m = m + 1) {
      for (i = m; i < n; i = i + istep) {
        j = i + mmax;
        tr = wr * xr[j] - wi * xi[j];
        ti = wr * xi[j] + wi * xr[j];
        xr[j] = xr[i] - tr;
        xi[j] = xi[i] - ti;
        xr[i] = xr[i] + tr;
        xi[i] = xi[i] + ti;
      }
      wtemp = wr;
      wr = wr * wpr - wi * wpi + wr;
      wi = wi * wpr + wtemp * wpi + wi;
    }
    mmax = istep;
  }
}

double sr[64];
double si[64];
double win[64];
double orig[64];

/* attenuate; the stores to r[]/q[] are ambiguously aliased with the
   loads from w[] that follow in the same body */
void window_pass(double r[], double q[], double w[], int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    r[i] = r[i] * w[i];
    q[i] = q[i] * w[i];
  }
}

void smooft(double r[], double q[], double w[], int n) {
  int i;
  fft(r, q, n, 1);
  window_pass(r, q, w, n);
  fft(r, q, n, -1);
  for (i = 0; i < n; i = i + 1) {
    r[i] = r[i] / n;
    q[i] = q[i] / n;
  }
}

int main() {
  int i; int f;
  double chk; double c;
  for (i = 0; i < 64; i = i + 1) {
    /* a smooth signal plus alternating "noise" */
    sr[i] = my_sin(0.2 * i) + 0.3 * (i % 2) - 0.15;
    si[i] = 0.0;
    orig[i] = sr[i];
    /* raised-cosine low-pass window over frequency bins */
    f = i;
    if (f > 32) f = 64 - f;
    c = my_cos(3.141592653589793 * f / 32.0);
    win[i] = 0.25 * (1.0 + c) * (1.0 + c);
  }
  smooft(sr, si, win, 64);
  chk = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    chk = chk + (sr[i] - orig[i]) * (sr[i] - orig[i]) + sr[i] * 0.01 * i;
  }
  print_float(chk);
  return (int)(chk * 10.0);
}
