// Recursive permutation program.
// Generated from lib/workloads/perm.ml -- run with:
//   dune exec bin/spd.exe -- run examples/kernels/perm.c -p spec -w 5

int permarray[8];
int pctr = 0;

void swap_elems(int v[], int a, int b) {
  int t;
  t = v[a];
  v[a] = v[b];
  v[b] = t;
}

void permute(int n) {
  int k;
  pctr = pctr + 1;
  if (n != 0) {
    permute(n - 1);
    for (k = n - 1; k >= 0; k = k - 1) {
      swap_elems(permarray, n, k);
      permute(n - 1);
      swap_elems(permarray, n, k);
    }
  }
}

int main() {
  int i; int trial; int chk;
  chk = 0;
  for (trial = 0; trial < 3; trial = trial + 1) {
    for (i = 0; i < 8; i = i + 1) {
      permarray[i] = i;
    }
    pctr = 0;
    permute(6);
    chk = chk + pctr;
  }
  for (i = 0; i < 8; i = i + 1) {
    chk = chk + permarray[i] * (i + 1);
  }
  print_int(chk);
  return chk;
}
