// Fast Fourier transform.
// Generated from lib/workloads/fft.ml -- run with:
//   dune exec bin/spd.exe -- run examples/kernels/fft.c -p spec -w 5

double reduce_angle(double x) {
  /* reduce into [-pi, pi] */
  int k;
  k = (int)(x / 6.283185307179586);
  x = x - k * 6.283185307179586;
  if (x > 3.141592653589793) x = x - 6.283185307179586;
  if (x < -3.141592653589793) x = x + 6.283185307179586;
  return x;
}

double my_sin(double xin) {
  double x; double x2; double term; double sum;
  int k;
  x = reduce_angle(xin);
  x2 = x * x;
  term = x;
  sum = x;
  for (k = 1; k < 10; k = k + 1) {
    term = -term * x2 / ((2.0 * k) * (2.0 * k + 1.0));
    sum = sum + term;
  }
  return sum;
}

double my_cos(double xin) {
  double x; double x2; double term; double sum;
  int k;
  x = reduce_angle(xin);
  x2 = x * x;
  term = 1.0;
  sum = 1.0;
  for (k = 1; k < 10; k = k + 1) {
    term = -term * x2 / ((2.0 * k - 1.0) * (2.0 * k));
    sum = sum + term;
  }
  return sum;
}

double my_sqrt(double x) {
  double r;
  int k;
  if (x <= 0.0) return 0.0;
  r = x;
  if (r > 1.0) r = x * 0.5 + 0.5;
  for (k = 0; k < 30; k = k + 1) {
    r = 0.5 * (r + x / r);
  }
  return r;
}

void fft(double xr[], double xi[], int n, int isign) {
  int i; int j; int k; int m;
  int mmax; int istep;
  double tr; double ti; double wr; double wi; double wpr; double wpi;
  double wtemp; double theta;
  /* bit reversal */
  j = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i < j) {
      tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
      ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
    }
    k = n / 2;
    while (k >= 1 && j >= k) {
      j = j - k;
      k = k / 2;
    }
    j = j + k;
  }
  /* Danielson-Lanczos */
  mmax = 1;
  while (mmax < n) {
    istep = mmax * 2;
    theta = isign * 3.141592653589793 / mmax;
    wtemp = my_sin(0.5 * theta);
    wpr = -2.0 * wtemp * wtemp;
    wpi = my_sin(theta);
    wr = 1.0;
    wi = 0.0;
    for (m = 0; m < mmax; m = m + 1) {
      for (i = m; i < n; i = i + istep) {
        j = i + mmax;
        tr = wr * xr[j] - wi * xi[j];
        ti = wr * xi[j] + wi * xr[j];
        xr[j] = xr[i] - tr;
        xi[j] = xi[i] - ti;
        xr[i] = xr[i] + tr;
        xi[i] = xi[i] + ti;
      }
      wtemp = wr;
      wr = wr * wpr - wi * wpi + wr;
      wi = wi * wpr + wtemp * wpi + wi;
    }
    mmax = istep;
  }
}

double re[64];
double im[64];

int main() {
  int i;
  double chk;
  for (i = 0; i < 64; i = i + 1) {
    re[i] = my_sin(0.35 * i) + 0.25 * my_cos(1.1 * i);
    im[i] = 0.0;
  }
  fft(re, im, 64, 1);
  chk = 0.0;
  for (i = 0; i < 64; i = i + 1) {
    chk = chk + re[i] * (i + 1) * 0.01 + im[i] * 0.005 * i;
  }
  /* round trip: the inverse transform recovers the input, scaled by n */
  fft(re, im, 64, -1);
  chk = chk + re[5] / 64.0 + re[17] / 64.0;
  print_float(chk);
  return (int)chk;
}
