(** Full pipeline walkthrough on a built-in benchmark: source -> decision
    trees -> dependence arcs -> static disambiguation -> SpD -> VLIW
    schedule -> timed simulation, with a per-stage dump.

    Run with: [dune exec examples/vliw_pipeline.exe -- [BENCH]]
    (default bench: moment) *)

module Pipeline = Spd_harness.Pipeline
module Ddg = Spd_analysis.Ddg

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "moment" in
  let w = Spd_workloads.Registry.by_name bench in
  Fmt.pr "=== %s: %s ===@.@." w.name w.description;
  let lowered = Spd_lang.Lower.compile w.source in
  let n_trees = ref 0 in
  Spd_ir.Prog.iter_trees (fun _ _ -> incr n_trees) lowered;
  Fmt.pr "stage 1  frontend:   %d trees, %d operations@." !n_trees
    (Spd_ir.Prog.code_size lowered);
  let mem_latency = 6 in
  let naive = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Naive lowered in
  let count_arcs p sel =
    let n = ref 0 in
    Spd_ir.Prog.iter_trees
      (fun _ (t : Spd_ir.Tree.t) ->
        n := !n + List.length (List.filter sel t.arcs))
      p;
    !n
  in
  Fmt.pr "stage 2  mem arcs:   %d conservative dependence arcs@."
    (count_arcs naive.prog Spd_ir.Memdep.is_active);
  let static = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Static lowered in
  Fmt.pr "stage 3  GCD/Banerjee: %d arcs remain (%d ambiguous)@."
    (count_arcs static.prog Spd_ir.Memdep.is_active)
    (count_arcs static.prog Spd_ir.Memdep.is_ambiguous);
  let spec = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Spec lowered in
  Fmt.pr "stage 4  SpD:        %d applications, %d -> %d operations@."
    (List.length spec.applications)
    (Spd_ir.Prog.code_size static.prog)
    (Spd_ir.Prog.code_size spec.prog);
  List.iter
    (fun (a : Spd_core.Heuristic.application) ->
      Fmt.pr "           %s tree %d %a, predicted gain %.2f cyc@." a.func
        a.tree_id Spd_ir.Memdep.pp_kind a.kind a.predicted_gain)
    spec.applications;
  (* show the schedule of the hottest transformed tree at width 4 *)
  (match
     List.concat_map
       (fun (_, (f : Spd_ir.Prog.func)) ->
         List.filter
           (fun (t : Spd_ir.Tree.t) ->
             List.exists
               (fun (a : Spd_ir.Memdep.t) ->
                 a.status = Spd_ir.Memdep.Removed Spd_ir.Memdep.By_spd)
               t.arcs)
           f.trees)
       spec.prog.funcs
   with
  | [] -> ()
  | tree :: _ ->
      Fmt.pr "@.stage 5  4-wide VLIW schedule of %s:@." tree.name;
      let g = Ddg.build ~mem_latency tree in
      let s = Spd_machine.Scheduler.run ~fus:4 g in
      for cycle = 0 to s.length - 1 do
        let ops =
          List.filteri (fun node _ -> s.issue.(node) = cycle)
            (Array.to_list tree.insns |> List.map Option.some)
          |> List.filter_map Fun.id
        in
        if ops <> [] then
          Fmt.pr "  cycle %2d | %a@." cycle
            Fmt.(list ~sep:(any " || ") Spd_ir.Insn.pp)
            ops
      done);
  Fmt.pr "@.stage 6  timed simulation (5 FUs, %d-cycle memory):@." mem_latency;
  let width = Spd_machine.Descr.Fus 5 in
  let base = Pipeline.cycles naive ~width in
  List.iter
    (fun kind ->
      let p = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) kind lowered in
      let c = Pipeline.cycles p ~width in
      Fmt.pr "  %-8s %10d cycles  %+6.1f%%@." (Pipeline.name kind) c
        (100.0 *. Pipeline.speedup ~base ~this:c))
    Pipeline.all
