(** Quickstart: compile a kernel with an ambiguous alias, apply the four
    disambiguation pipelines, and watch speculative disambiguation close
    the gap between realistic and perfect static disambiguation.

    Run with: [dune exec examples/quickstart.exe] *)

module Pipeline = Spd_harness.Pipeline

(* Two array parameters the compiler cannot tell apart; the store to
   [dst[i]] blocks the load of [src[i]] unless something disambiguates
   them. *)
let source =
  {|
double xs[256];
double ys[256];

double scan(double dst[], double src[], int n) {
  int i;
  double acc;
  acc = 0.0;
  for (i = 0; i < n; i = i + 1) {
    dst[i] = acc * 0.25 + 1.0;
    acc = acc + src[i] * 3.0 + 0.5;
  }
  return acc;
}

int main() {
  int i;
  double r;
  for (i = 0; i < 256; i = i + 1) { xs[i] = 0.0; ys[i] = 0.01 * i; }
  r = scan(xs, ys, 256);
  print_float(r);
  return (int)r;
}
|}

let () =
  let mem_latency = 6 in
  let width = Spd_machine.Descr.Fus 5 in
  Fmt.pr "Machine: 5 universal FUs, %d-cycle memory@.@." mem_latency;
  let lowered = Spd_lang.Lower.compile source in
  let naive = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Naive lowered in
  let base = Pipeline.cycles naive ~width in
  Fmt.pr "%-8s %10s %10s  %s@." "pipeline" "cycles" "speedup" "";
  List.iter
    (fun kind ->
      let p = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) kind lowered in
      let cycles = Pipeline.cycles p ~width in
      Fmt.pr "%-8s %10d %9.1f%%  %s@." (Pipeline.name kind) cycles
        (100.0 *. Pipeline.speedup ~base ~this:cycles)
        (match p.applications with
        | [] -> ""
        | apps -> Fmt.str "(%d SpD applications)" (List.length apps)))
    Pipeline.all;
  (* peek at what SpD did to the loop tree *)
  let spec = Pipeline.prepare ~config:(Pipeline.Config.v ~mem_latency ()) Pipeline.Spec lowered in
  let scan = Spd_ir.Prog.find_func spec.prog "scan" in
  let transformed =
    List.find
      (fun (t : Spd_ir.Tree.t) ->
        List.exists
          (fun (a : Spd_ir.Memdep.t) ->
            a.status = Spd_ir.Memdep.Removed Spd_ir.Memdep.By_spd)
          t.arcs)
      scan.trees
  in
  Fmt.pr "@.The transformed loop tree (note the address compare, the \
          duplicated@.slice guarded on both polarities, and the select \
          merges):@.@.%a@."
    Spd_ir.Tree.pp transformed
