# Convenience targets; `make check` is the CI entry point: full build,
# the test suite, and a table6_3 smoke run twice — the second pass must
# be served entirely from the warm _spd_cache/.

DUNE ?= dune

.PHONY: all check test bench clean

all:
	$(DUNE) build

test:
	$(DUNE) runtest

check: all
	$(DUNE) runtest
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2 --timings

bench:
	$(DUNE) exec bench/main.exe -- all --timings

clean:
	$(DUNE) clean
	rm -rf _spd_cache
