# Convenience targets; `make check` is the CI entry point: full build,
# the test suite, a 200-seed differential fuzz smoke, a table6_3 smoke
# run twice — the second pass must be served entirely from the warm
# _spd_cache/ — a telemetry smoke that lints the trace and JSON
# report output with the in-repo JSON reader, and a translation-
# validation smoke that certifies every SpD application on the paper
# grid with the symbolic equivalence checker.

DUNE ?= dune
SMOKE_DIR ?= /tmp

.PHONY: all check test bench bench-json fuzz-smoke telemetry-smoke \
	bench-diff-smoke perf-smoke serve-smoke chaos-smoke obs-smoke \
	validate-smoke golden-promote clean

all:
	$(DUNE) build

test:
	$(DUNE) runtest

# Differential fuzz oracle: 200 seeded random programs through the
# plain interpreter vs the SpD-transformed + scheduled pipeline.
fuzz-smoke:
	$(DUNE) exec test/fuzz_diff.exe -- --count 200 --seed 42

# Telemetry smoke: a traced machine-readable run, then both output
# files validated by test/json_lint.exe.
telemetry-smoke:
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2 --no-cache \
	  --trace $(SMOKE_DIR)/spd_trace.json --format json \
	  > $(SMOKE_DIR)/spd_report.json
	$(DUNE) exec bin/spd.exe -- explain matmul300 --format json \
	  > $(SMOKE_DIR)/spd_explain.json
	$(DUNE) exec bin/spd.exe -- why matmul300 --format json \
	  > $(SMOKE_DIR)/spd_why.json
	$(DUNE) exec bin/spd.exe -- cache stats --json \
	  > $(SMOKE_DIR)/spd_cache.json
	$(DUNE) exec test/json_lint.exe -- \
	  $(SMOKE_DIR)/spd_trace.json $(SMOKE_DIR)/spd_report.json \
	  $(SMOKE_DIR)/spd_explain.json $(SMOKE_DIR)/spd_why.json \
	  $(SMOKE_DIR)/spd_cache.json

# Regression-tracker smoke: generate the cycles artefact twice (the
# second run is served from the warm cache, so the reports agree and
# `spd bench diff` must exit 0), then inject a deterministic 10% cycle
# inflation via the Faults hooks and require diff to exit 2.  The diff
# JSON is linted against the spd-bench-diff/1 schema.
bench-diff-smoke:
	$(DUNE) exec bin/spd.exe -- report cycles --jobs 2 --format json \
	  > $(SMOKE_DIR)/spd_bench_a.json
	$(DUNE) exec bin/spd.exe -- report cycles --jobs 2 --format json \
	  > $(SMOKE_DIR)/spd_bench_b.json
	$(DUNE) exec bin/spd.exe -- bench diff \
	  $(SMOKE_DIR)/spd_bench_a.json $(SMOKE_DIR)/spd_bench_b.json
	$(DUNE) exec bin/spd.exe -- report cycles --jobs 2 --format json \
	  --inject-fault cycles-inflate:10 > $(SMOKE_DIR)/spd_bench_slow.json
	$(DUNE) exec bin/spd.exe -- bench diff --format json \
	  $(SMOKE_DIR)/spd_bench_a.json $(SMOKE_DIR)/spd_bench_slow.json \
	  > $(SMOKE_DIR)/spd_bench_diff.json; \
	  status=$$?; if [ $$status -ne 2 ]; then \
	    echo "bench-diff-smoke: expected exit 2 on injected slowdown, got $$status"; \
	    exit 1; fi
	$(DUNE) exec test/json_lint.exe -- $(SMOKE_DIR)/spd_bench_diff.json

# Hot-path throughput gate: measure matmul300 and fail (exit 2) if
# simulate throughput drops more than 25% below the committed
# spd-micro/1 baseline snapshot.  The emitted document is linted
# against the schema.  Re-bless with:
#   dune exec bin/spd.exe -- bench micro matmul300 --format json \
#     > bench/history/micro-baseline.json
perf-smoke:
	$(DUNE) exec bin/spd.exe -- bench micro matmul300 --format json \
	  --baseline bench/history/micro-baseline.json --max-drop 25 \
	  > $(SMOKE_DIR)/spd_micro.json
	$(DUNE) exec test/json_lint.exe -- $(SMOKE_DIR)/spd_micro.json

# Daemon smoke: start a real `spd serve`, check that a served report is
# byte-identical to the CLI's JSON output and that a 100-request
# duplicate burst records exactly one simulation, exercise `spd call`
# and `shutdown`, then lint the saved spd-serve/1 documents.
serve-smoke:
	$(DUNE) exec test/serve_smoke.exe -- $(SMOKE_DIR)
	$(DUNE) exec test/json_lint.exe -- \
	  $(SMOKE_DIR)/spd_serve_ping.json $(SMOKE_DIR)/spd_serve_query.json \
	  $(SMOKE_DIR)/spd_serve_run.json $(SMOKE_DIR)/spd_serve_stats.json \
	  $(SMOKE_DIR)/spd_serve_shutdown.json

# Crash-only chaos smoke: a real `spd serve` under torn frames, garbage
# headers, stalled connections and an injected worker-raise fault.
# Good requests must get byte-identical answers, the worker crew must
# recover (restart counter > 0, workers-alive back to full), SIGTERM
# must drain the in-flight request before exit 0, and a saturated
# daemon must refuse with `server busy` + retry_after_ms.
chaos-smoke:
	$(DUNE) exec test/chaos_smoke.exe -- $(SMOKE_DIR)
	$(DUNE) exec test/json_lint.exe -- \
	  $(SMOKE_DIR)/spd_chaos_health.json $(SMOKE_DIR)/spd_chaos_refused.json \
	  $(SMOKE_DIR)/spd_chaos_busy.json

# Observability smoke: a real `spd serve --log --trace --slow-ms`
# under a mixed RPC burst.  Asserts rid echoing on every envelope,
# exact per-method latency histogram counts with a sane p95, a
# monotone Prometheus exposition whose +Inf bucket equals _count, a
# served `why` decision ledger and `validate` verdict ledger
# byte-identical to the `spd why` / `spd validate` CLI documents, one
# `spd top` frame, and a structured log + trace profile that agree
# with the responses; then lints the spd-log/1 lines, the trace, the
# saved envelope and the spd-decisions/1 + spd-validate/1 ledgers with
# the in-repo reader.
obs-smoke:
	$(DUNE) exec test/obs_smoke.exe -- $(SMOKE_DIR)
	$(DUNE) exec test/json_lint.exe -- \
	  $(SMOKE_DIR)/spd_obs_log.jsonl $(SMOKE_DIR)/spd_obs_trace.json \
	  $(SMOKE_DIR)/spd_obs_envelope.json $(SMOKE_DIR)/spd_obs_why.json \
	  $(SMOKE_DIR)/spd_obs_validate.json

# Translation-validation smoke: certify the full paper grid with the
# symbolic equivalence checker (`spd report --validate` exits 2 on any
# refuted verdict or failed cell), then emit one per-workload
# spd-validate/1 document and lint it against the schema.
validate-smoke:
	$(DUNE) exec bin/spd.exe -- report --validate --jobs 2
	$(DUNE) exec bin/spd.exe -- validate matmul300 --format json \
	  > $(SMOKE_DIR)/spd_validate.json
	$(DUNE) exec test/json_lint.exe -- $(SMOKE_DIR)/spd_validate.json

# Regenerate the golden-schedule corpus under test/golden/ after an
# intentional scheduler or DDG change; review the grid diff and commit.
golden-promote:
	$(DUNE) exec test/golden_promote.exe

check: all
	$(DUNE) runtest
	$(MAKE) fuzz-smoke
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2 --timings
	$(MAKE) telemetry-smoke
	$(MAKE) bench-diff-smoke
	$(MAKE) perf-smoke
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) obs-smoke
	$(MAKE) validate-smoke

bench:
	$(DUNE) exec bench/main.exe -- all --timings

# The full report (paper artefacts + extensions) as one spd-report/1
# JSON document; see EXPERIMENTS.md for the schema.
bench-json:
	$(DUNE) exec bench/main.exe -- all --format json > BENCH_REPORT.json

clean:
	$(DUNE) clean
	rm -rf _spd_cache
