# Convenience targets; `make check` is the CI entry point: full build,
# the test suite, a 200-seed differential fuzz smoke, a table6_3 smoke
# run twice — the second pass must be served entirely from the warm
# _spd_cache/ — and a telemetry smoke that lints the trace and JSON
# report output with the in-repo JSON reader.

DUNE ?= dune
SMOKE_DIR ?= /tmp

.PHONY: all check test bench bench-json fuzz-smoke telemetry-smoke clean

all:
	$(DUNE) build

test:
	$(DUNE) runtest

# Differential fuzz oracle: 200 seeded random programs through the
# plain interpreter vs the SpD-transformed + scheduled pipeline.
fuzz-smoke:
	$(DUNE) exec test/fuzz_diff.exe -- --count 200 --seed 42

# Telemetry smoke: a traced machine-readable run, then both output
# files validated by test/json_lint.exe.
telemetry-smoke:
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2 --no-cache \
	  --trace $(SMOKE_DIR)/spd_trace.json --format json \
	  > $(SMOKE_DIR)/spd_report.json
	$(DUNE) exec test/json_lint.exe -- \
	  $(SMOKE_DIR)/spd_trace.json $(SMOKE_DIR)/spd_report.json

check: all
	$(DUNE) runtest
	$(MAKE) fuzz-smoke
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2 --timings
	$(MAKE) telemetry-smoke

bench:
	$(DUNE) exec bench/main.exe -- all --timings

# The full report (paper artefacts + extensions) as one spd-report/1
# JSON document; see EXPERIMENTS.md for the schema.
bench-json:
	$(DUNE) exec bench/main.exe -- all --format json > BENCH_REPORT.json

clean:
	$(DUNE) clean
	rm -rf _spd_cache
