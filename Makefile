# Convenience targets; `make check` is the CI entry point: full build,
# the test suite, a 200-seed differential fuzz smoke, and a table6_3
# smoke run twice — the second pass must be served entirely from the
# warm _spd_cache/.

DUNE ?= dune

.PHONY: all check test bench fuzz-smoke clean

all:
	$(DUNE) build

test:
	$(DUNE) runtest

# Differential fuzz oracle: 200 seeded random programs through the
# plain interpreter vs the SpD-transformed + scheduled pipeline.
fuzz-smoke:
	$(DUNE) exec test/fuzz_diff.exe -- --count 200 --seed 42

check: all
	$(DUNE) runtest
	$(MAKE) fuzz-smoke
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2
	$(DUNE) exec bench/main.exe -- table6_3 --jobs 2 --timings

bench:
	$(DUNE) exec bench/main.exe -- all --timings

clean:
	$(DUNE) clean
	rm -rf _spd_cache
